// Property suite for the low-diameter generators (HyperX, Dragonfly, full
// mesh): element counts against the closed forms, degree regularity,
// BFS-measured diameter equal to the analytical bound, bidirectional cable
// pairing, host bijectivity, shape metadata round-trips through topo/io,
// and the StructuredMinimal oracle's all-pairs minimality.  Negative cases
// mutate the shape promise out from under the oracle and expect a throw
// rather than wrong routes.
//
// Golden fixtures pin one simulated cell per family (same canonical-JSON
// machinery as test_engine_golden):
//
//   ITB_UPDATE_GOLDEN=1 ctest -R LowDiameterGolden
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "harness/json.hpp"
#include "harness/runner.hpp"
#include "harness/testbed.hpp"
#include "route/topo_minimal.hpp"
#include "route/switch_path.hpp"
#include "topo/generators.hpp"
#include "topo/io.hpp"
#include "traffic/patterns.hpp"

namespace itb {
namespace {

// --------------------------------------------------------------- helpers

int bfs_diameter(const Topology& topo) {
  const int n = topo.num_switches();
  const std::vector<int> dist = topo.all_switch_distances();
  int diameter = 0;
  for (const int d : dist) {
    EXPECT_GE(d, 0) << "switch graph must be connected";
    diameter = std::max(diameter, d);
  }
  EXPECT_EQ(dist.size(), static_cast<std::size_t>(n) * n);
  return diameter;
}

int switch_switch_cables(const Topology& topo) {
  int count = 0;
  for (CableId c = 0; c < topo.num_cables(); ++c) {
    if (!topo.cable(c).to_host()) ++count;
  }
  return count;
}

void expect_cables_paired(const Topology& topo) {
  // Both endpoints of every cable point back at it through the port table,
  // i.e. adjacency is symmetric at the port level, not just the graph level.
  for (CableId c = 0; c < topo.num_cables(); ++c) {
    const Cable& cb = topo.cable(c);
    const PortPeer& pa = topo.peer(cb.a.sw, cb.a.port);
    EXPECT_EQ(pa.cable, c);
    if (cb.to_host()) {
      EXPECT_EQ(pa.kind, PeerKind::kHost);
      EXPECT_EQ(pa.host, cb.host);
      EXPECT_EQ(topo.host(cb.host).cable, c);
    } else {
      EXPECT_EQ(pa.kind, PeerKind::kSwitch);
      EXPECT_EQ(pa.sw, cb.b.sw);
      EXPECT_EQ(pa.port, cb.b.port);
      const PortPeer& pb = topo.peer(cb.b.sw, cb.b.port);
      EXPECT_EQ(pb.kind, PeerKind::kSwitch);
      EXPECT_EQ(pb.cable, c);
      EXPECT_EQ(pb.sw, cb.a.sw);
      EXPECT_EQ(pb.port, cb.a.port);
      EXPECT_NE(cb.a.sw, cb.b.sw) << "no self loops";
    }
  }
}

void expect_hosts_bijective(const Topology& topo, int hosts_per_switch) {
  // Dense host ids, each attached to exactly one switch port, exactly
  // hosts_per_switch per switch, and id order follows switch order (the
  // traffic patterns and the host<->switch mapping rely on this).
  ASSERT_EQ(topo.num_hosts(), topo.num_switches() * hosts_per_switch);
  for (SwitchId s = 0; s < topo.num_switches(); ++s) {
    const std::vector<HostId> hs = topo.hosts_of_switch(s);
    ASSERT_EQ(hs.size(), static_cast<std::size_t>(hosts_per_switch)) << s;
    for (const HostId h : hs) {
      EXPECT_EQ(topo.host(h).sw, s);
      EXPECT_EQ(h / hosts_per_switch, s)
          << "host ids must be dense in switch order";
    }
  }
}

void expect_regular_degree(const Topology& topo, int degree) {
  for (SwitchId s = 0; s < topo.num_switches(); ++s) {
    EXPECT_EQ(topo.switch_degree(s), degree) << "switch " << s;
  }
}

void expect_structurally_valid(const Topology& topo) {
  const std::vector<std::string> problems = topo.validate();
  EXPECT_TRUE(problems.empty())
      << problems.size() << " problems; first: " << problems.front();
  EXPECT_TRUE(topo.connected());
  expect_cables_paired(topo);
}

// ---------------------------------------------------------------- HyperX

TEST(HyperXGenerator, CountsDegreesDiameterMatchClosedForms) {
  const Topology t = make_hyperx({4, 4}, 2);
  EXPECT_EQ(t.num_switches(), 16);
  EXPECT_EQ(t.num_hosts(), 32);
  // Per-dimension cliques: N * sum(S_k - 1) / 2 switch cables.
  EXPECT_EQ(switch_switch_cables(t), 16 * (3 + 3) / 2);
  EXPECT_EQ(t.num_cables(), 48 + 32);
  expect_regular_degree(t, 6);
  EXPECT_EQ(bfs_diameter(t), 2);
  expect_hosts_bijective(t, 2);
  expect_structurally_valid(t);
  EXPECT_EQ(t.shape().kind, TopoKind::kHyperX);
  EXPECT_EQ(t.shape().params, (std::vector<int>{2, 4, 4, 2}));
}

TEST(HyperXGenerator, MixedRadixAndDegenerateExtents) {
  const Topology t = make_hyperx({2, 3, 4}, 1);
  EXPECT_EQ(t.num_switches(), 24);
  expect_regular_degree(t, 1 + 2 + 3);
  EXPECT_EQ(switch_switch_cables(t), 24 * 6 / 2);
  EXPECT_EQ(bfs_diameter(t), 3);
  expect_structurally_valid(t);

  // Extent-1 dimensions contribute no hops: diameter counts only S_k > 1.
  const Topology flat = make_hyperx({1, 5}, 1);
  EXPECT_EQ(flat.num_switches(), 5);
  expect_regular_degree(flat, 4);
  EXPECT_EQ(bfs_diameter(flat), 1);
}

TEST(HyperXGenerator, ValidationNamesTheOffendingValue) {
  EXPECT_THROW(make_hyperx({}, 2), std::invalid_argument);
  try {
    make_hyperx({4, 0}, 2);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("S[1]"), std::string::npos)
        << e.what();
  }
  try {
    make_hyperx({4, 4}, -1);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("-1"), std::string::npos) << e.what();
  }
  // Port budget named in the message: degree 6 + 2 hosts needs 8 ports.
  try {
    make_hyperx({4, 4}, 2, 7);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("7"), std::string::npos) << e.what();
  }
}

// ------------------------------------------------------------- Dragonfly

int dragonfly_group_of(SwitchId s, int a) { return s / a; }

void expect_one_global_cable_per_group_pair(const Topology& t, int a,
                                            int groups) {
  std::vector<int> pair_count(static_cast<std::size_t>(groups) * groups, 0);
  for (CableId c = 0; c < t.num_cables(); ++c) {
    const Cable& cb = t.cable(c);
    if (cb.to_host()) continue;
    const int g1 = dragonfly_group_of(cb.a.sw, a);
    const int g2 = dragonfly_group_of(cb.b.sw, a);
    if (g1 == g2) continue;
    ++pair_count[static_cast<std::size_t>(std::min(g1, g2)) * groups +
                 std::max(g1, g2)];
  }
  for (int g1 = 0; g1 < groups; ++g1) {
    for (int g2 = g1 + 1; g2 < groups; ++g2) {
      EXPECT_EQ(pair_count[static_cast<std::size_t>(g1) * groups + g2], 1)
          << "groups " << g1 << "," << g2;
    }
  }
}

TEST(DragonflyGenerator, CountsDegreesDiameterMatchClosedForms) {
  for (const DragonflyArrangement arr :
       {DragonflyArrangement::kPalmtree, DragonflyArrangement::kAbsolute}) {
    SCOPED_TRACE(arr == DragonflyArrangement::kPalmtree ? "palmtree"
                                                        : "absolute");
    const int a = 4, p = 2, h = 2;
    const int groups = a * h + 1;  // 9
    const Topology t = make_dragonfly(a, p, h, arr);
    EXPECT_EQ(t.num_switches(), groups * a);
    EXPECT_EQ(t.num_hosts(), groups * a * p);
    expect_regular_degree(t, (a - 1) + h);
    // Intra-group cliques + one global cable per group pair.
    EXPECT_EQ(switch_switch_cables(t),
              groups * a * (a - 1) / 2 + groups * (groups - 1) / 2);
    EXPECT_EQ(bfs_diameter(t), 3);
    expect_hosts_bijective(t, p);
    expect_structurally_valid(t);
    expect_one_global_cable_per_group_pair(t, a, groups);
    EXPECT_EQ(t.shape().kind, TopoKind::kDragonfly);
    EXPECT_EQ(t.shape().params,
              (std::vector<int>{a, p, h, static_cast<int>(arr)}));
  }
}

TEST(DragonflyGenerator, SmallestCanonicalInstance) {
  // a=2, h=1: 3 groups of 2, a 6-switch ring-ish graph with diameter 3.
  const Topology t = make_dragonfly(2, 1, 1);
  EXPECT_EQ(t.num_switches(), 6);
  expect_regular_degree(t, 2);
  EXPECT_EQ(bfs_diameter(t), 3);
  expect_structurally_valid(t);
}

TEST(DragonflyGenerator, ValidationNamesTheOffendingValue) {
  try {
    make_dragonfly(1, 2, 2);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("1"), std::string::npos) << e.what();
  }
  EXPECT_THROW(make_dragonfly(4, -1, 2), std::invalid_argument);
  EXPECT_THROW(make_dragonfly(4, 2, 0), std::invalid_argument);
  EXPECT_THROW(make_dragonfly(64, 1, 16), std::invalid_argument)
      << "switch cap";
}

// ------------------------------------------------------------- full mesh

TEST(FullMeshGenerator, CountsDegreesDiameterMatchClosedForms) {
  const Topology t = make_full_mesh(16, 2);
  EXPECT_EQ(t.num_switches(), 16);
  EXPECT_EQ(t.num_hosts(), 32);
  EXPECT_EQ(switch_switch_cables(t), 16 * 15 / 2);
  expect_regular_degree(t, 15);
  EXPECT_EQ(bfs_diameter(t), 1);
  expect_hosts_bijective(t, 2);
  expect_structurally_valid(t);
  EXPECT_EQ(t.shape().kind, TopoKind::kFullMesh);
  EXPECT_EQ(t.shape().params, (std::vector<int>{16, 2}));
}

TEST(FullMeshGenerator, ValidationNamesTheOffendingValue) {
  try {
    make_full_mesh(1, 2);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("1"), std::string::npos) << e.what();
  }
  try {
    make_full_mesh(2000, 2);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("2000"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(make_full_mesh(4, -1), std::invalid_argument);
  EXPECT_THROW(make_full_mesh(16, 2, 16), std::invalid_argument)
      << "15 switch ports + 2 hosts cannot fit in 16";
}

// -------------------------------------------------- shape metadata + io

TEST(TopoShape, RoundTripsThroughMapFiles) {
  const Topology tds[] = {make_hyperx({4, 4}, 2), make_dragonfly(4, 2, 2),
                          make_dragonfly(4, 2, 2,
                                         DragonflyArrangement::kAbsolute),
                          make_full_mesh(16, 2)};
  for (const Topology& t : tds) {
    SCOPED_TRACE(t.name());
    const Topology back = parse_topology_string(serialize_topology(t));
    EXPECT_EQ(back.shape(), t.shape());
    EXPECT_EQ(back.num_switches(), t.num_switches());
    EXPECT_EQ(back.num_cables(), t.num_cables());
    // The re-parsed topology still drives the structured oracle.
    EXPECT_TRUE(has_structured_minimal(back));
  }
  // Generic topologies keep emitting shape-free files.
  const Topology torus = make_torus_2d(4, 4, 2);
  EXPECT_EQ(torus.shape().kind, TopoKind::kGeneric);
  EXPECT_EQ(serialize_topology(torus).find("shape"), std::string::npos);
  EXPECT_THROW(parse_topology_string("topology x\nswitches 2 4\n"
                                     "shape warpdrive 1\n"),
               TopologyParseError);
}

// ------------------------------------------- structured minimal routing

void expect_minimal_all_pairs(const Topology& topo) {
  // Dragonfly's canonical l-g-l path (≤3 hops via the unique direct
  // group-pair cable) is what the oracle promises — it can exceed the BFS
  // distance when a two-global detour through a third group happens to be
  // shorter, so for that family the bound is the l-g-l ceiling, not
  // equality with BFS.
  const bool lgl = topo.shape().kind == TopoKind::kDragonfly;
  const StructuredMinimal sm(topo);
  const int n = topo.num_switches();
  const std::vector<int> dist = topo.all_switch_distances();
  for (SwitchId s = 0; s < n; ++s) {
    for (SwitchId d = 0; d < n; ++d) {
      const SwitchPath p = sm.path(s, d);
      ASSERT_TRUE(path_is_consistent(topo, p))
          << s << "->" << d << " inconsistent";
      ASSERT_EQ(p.src(), s);
      ASSERT_EQ(p.dst(), d);
      const int bfs = dist[static_cast<std::size_t>(s) * n + d];
      if (lgl) {
        ASSERT_GE(p.hops(), bfs) << s << "->" << d << " shorter than BFS?";
        ASSERT_LE(p.hops(), 3) << s << "->" << d << " exceeds l-g-l ceiling";
      } else {
        ASSERT_EQ(p.hops(), bfs) << s << "->" << d << " not minimal";
      }
    }
  }
}

TEST(StructuredMinimalOracle, AllPairsMinimalOnEveryFamily) {
  expect_minimal_all_pairs(make_hyperx({4, 4}, 2));
  expect_minimal_all_pairs(make_hyperx({2, 3, 4}, 1));
  expect_minimal_all_pairs(make_dragonfly(4, 2, 2));
  expect_minimal_all_pairs(
      make_dragonfly(4, 2, 2, DragonflyArrangement::kAbsolute));
  expect_minimal_all_pairs(make_full_mesh(16, 2));
}

TEST(StructuredMinimalOracle, RejectsGenericTopologies) {
  const Topology torus = make_torus_2d(4, 4, 2);
  EXPECT_FALSE(has_structured_minimal(torus));
  EXPECT_THROW(StructuredMinimal sm(torus), std::invalid_argument);
}

TEST(StructuredMinimalOracle, RejectsMutatedShapePromises) {
  // A shape whose parameters contradict the switch count must throw at
  // construction, not route wrongly.
  Topology hx = make_hyperx({4, 4}, 2);
  hx.set_shape({TopoKind::kHyperX, {2, 3, 5, 2}});  // 15 != 16 switches
  EXPECT_THROW(StructuredMinimal sm(hx), std::invalid_argument);

  // A dragonfly claim over a full mesh has duplicate group-pair cables.
  Topology fm = make_full_mesh(6, 1);
  fm.set_shape({TopoKind::kDragonfly, {2, 1, 1, 0}});
  EXPECT_THROW(StructuredMinimal sm(fm), std::invalid_argument);

  // A full-mesh claim over a sparser graph survives construction (the
  // params do match the counts) but must throw on the first absent hop.
  Topology df = make_dragonfly(2, 1, 1);
  df.set_shape({TopoKind::kFullMesh, {6, 1}});
  const StructuredMinimal sm(df);
  bool threw = false;
  for (SwitchId s = 0; s < 6 && !threw; ++s) {
    for (SwitchId d = 0; d < 6 && !threw; ++d) {
      try {
        (void)sm.path(s, d);
      } catch (const std::invalid_argument&) {
        threw = true;
      }
    }
  }
  EXPECT_TRUE(threw) << "diameter-3 graph cannot be a clique";
}

TEST(StructuredMinimalOracle, MinTablesBuildAndVerifyThroughTestbed) {
  for (const char* which : {"hyperx", "dragonfly", "fullmesh"}) {
    SCOPED_TRACE(which);
    Topology t = std::string(which) == "hyperx"    ? make_hyperx({4, 4}, 2)
                 : std::string(which) == "dragonfly" ? make_dragonfly(4, 2, 2)
                                                     : make_full_mesh(16, 2);
    const bool lgl = std::string(which) == "dragonfly";
    const Testbed tb(std::move(t), kAutoRoot);
    const RouteSet& min = tb.routes(RoutingScheme::kMinimal);
    EXPECT_EQ(min.algorithm(), RoutingAlgorithm::kMinimal);
    const int n = tb.topo().num_switches();
    const std::vector<int> dist = tb.topo().all_switch_distances();
    for (SwitchId s = 0; s < n; ++s) {
      for (SwitchId d = 0; d < n; ++d) {
        if (s == d) continue;
        const AltsView alts = min.alternatives(s, d);
        ASSERT_EQ(alts.size(), 1u);
        const int bfs = dist[static_cast<std::size_t>(s) * n + d];
        if (lgl) {
          // Canonical l-g-l may exceed the BFS distance (two-global
          // shortcuts) but never the diameter-3 ceiling.
          EXPECT_GE(alts[0].total_switch_hops, bfs);
          EXPECT_LE(alts[0].total_switch_hops, 3);
        } else {
          EXPECT_EQ(alts[0].total_switch_hops, bfs);
        }
        EXPECT_EQ(alts[0].num_itbs(), 0);
      }
    }
  }
  // MIN on a generic topology has no structure to key off: warm must throw.
  const Testbed torus(make_torus_2d(4, 4, 2));
  EXPECT_THROW((void)torus.routes(RoutingScheme::kMinimal),
               std::invalid_argument);
}

// ------------------------------------------------------ golden fixtures
// One simulated cell per family, pinned as canonical JSON exactly like the
// engine goldens: POD engine, checked off, fixed seed.  MIN drives the
// full mesh (its deadlock-free baseline), the ITB schemes drive HyperX and
// Dragonfly — MIN-dragonfly legitimately deadlocks, which is the paper's
// point, not a fixture.

RunResult run_lowdiam_cell(const Testbed& tb, RoutingScheme scheme) {
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.02;
  cfg.payload_bytes = 512;
  cfg.warmup = us(50);
  cfg.measure = us(150);
  cfg.seed = 42;
  cfg.engine = EngineKind::kPod;
  cfg.checked = false;
  const UniformPattern pat(tb.topo().num_hosts());
  return run_point(tb, scheme, pat, cfg);
}

void compare_or_update_golden(const char* name, const RunResult& r) {
  const std::string path = std::string(ITB_GOLDEN_DIR) + "/" + name;
  const std::string got = run_result_to_canonical_json(r) + "\n";
  if (std::getenv("ITB_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path
                         << " missing; regenerate with ITB_UPDATE_GOLDEN=1";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "simulated results changed; if intended, regenerate " << name
      << " with ITB_UPDATE_GOLDEN=1 and review the diff";
}

TEST(LowDiameterGolden, HyperX4x4ItbRrCell) {
  const Testbed tb(make_hyperx({4, 4}, 2), kAutoRoot);
  const RunResult r = run_lowdiam_cell(tb, RoutingScheme::kItbRr);
  ASSERT_GT(r.delivered, 0u);
  ASSERT_EQ(r.invariant_violations, 0u);
  compare_or_update_golden("lowdiam_hyperx44_itbrr.json", r);
}

TEST(LowDiameterGolden, DragonflyA4P2H2ItbSpCell) {
  const Testbed tb(make_dragonfly(4, 2, 2), kAutoRoot);
  const RunResult r = run_lowdiam_cell(tb, RoutingScheme::kItbSp);
  ASSERT_GT(r.delivered, 0u);
  ASSERT_EQ(r.invariant_violations, 0u);
  compare_or_update_golden("lowdiam_dragonfly422_itbsp.json", r);
}

TEST(LowDiameterGolden, FullMesh16MinCell) {
  const Testbed tb(make_full_mesh(16, 2), kAutoRoot);
  const RunResult r = run_lowdiam_cell(tb, RoutingScheme::kMinimal);
  ASSERT_GT(r.delivered, 0u);
  ASSERT_EQ(r.invariant_violations, 0u);
  compare_or_update_golden("lowdiam_fullmesh16_min.json", r);
}

}  // namespace
}  // namespace itb
