// Traffic patterns and the open-loop generator.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/route_builder.hpp"
#include "metrics/collector.hpp"
#include "net/network.hpp"
#include "route/simple_routes.hpp"
#include "sim/simulator.hpp"
#include "topo/generators.hpp"
#include "traffic/generator.hpp"
#include "traffic/patterns.hpp"

namespace itb {
namespace {

TEST(UniformPattern, NeverSelfAndCoversAll) {
  UniformPattern p(16);
  Rng rng(1);
  std::set<HostId> seen;
  for (int i = 0; i < 2000; ++i) {
    const HostId d = p.pick(5, rng);
    ASSERT_NE(d, 5);
    ASSERT_GE(d, 0);
    ASSERT_LT(d, 16);
    seen.insert(d);
  }
  EXPECT_EQ(seen.size(), 15u);
}

TEST(UniformPattern, RoughlyUniform) {
  UniformPattern p(8);
  Rng rng(2);
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<std::size_t>(p.pick(0, rng))];
  }
  for (int h = 1; h < 8; ++h) {
    EXPECT_NEAR(counts[static_cast<std::size_t>(h)], kDraws / 7, kDraws / 70);
  }
}

TEST(BitReversal, InvolutionAndFixedPoints) {
  BitReversalPattern p(512);
  Rng rng(1);
  int fixed = 0;
  for (HostId h = 0; h < 512; ++h) {
    const HostId d = p.pick(h, rng);
    if (d == kNoHost) {
      ++fixed;
      continue;
    }
    // Reversal is an involution: reversing the destination gives the source.
    EXPECT_EQ(p.pick(d, rng), h);
  }
  // 9-bit palindromes: 2^5 = 32 fixed points.
  EXPECT_EQ(fixed, 32);
}

TEST(BitReversal, KnownValues) {
  BitReversalPattern p(8);  // 3 bits
  Rng rng(1);
  EXPECT_EQ(p.pick(1, rng), 4);  // 001 -> 100
  EXPECT_EQ(p.pick(3, rng), 6);  // 011 -> 110
  EXPECT_EQ(p.pick(0, rng), kNoHost);
  EXPECT_EQ(p.pick(7, rng), kNoHost);
}

TEST(BitReversal, RejectsNonPowerOfTwo) {
  EXPECT_THROW(BitReversalPattern(400), std::invalid_argument);
}

TEST(Hotspot, FractionRespected) {
  HotspotPattern p(64, 13, 0.10);
  Rng rng(3);
  int to_spot = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (p.pick(0, rng) == 13) ++to_spot;
  }
  // 10% direct + ~1/63 of the uniform remainder.
  const double expect = 0.10 + 0.90 / 63.0;
  EXPECT_NEAR(static_cast<double>(to_spot) / kDraws, expect, 0.01);
}

TEST(Hotspot, HotspotHostSendsUniform) {
  HotspotPattern p(64, 13, 0.50);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const HostId d = p.pick(13, rng);
    ASSERT_NE(d, 13) << "hotspot never sends to itself";
  }
}

TEST(Hotspot, Validation) {
  EXPECT_THROW(HotspotPattern(8, 9, 0.1), std::invalid_argument);
  EXPECT_THROW(HotspotPattern(8, -1, 0.1), std::invalid_argument);
  EXPECT_THROW(HotspotPattern(8, 3, 1.5), std::invalid_argument);
}

TEST(Local, DestinationsWithinThreeSwitches) {
  const Topology t = make_torus_2d(8, 8, 8);
  LocalPattern p(t, 3);
  Rng rng(5);
  const auto dist = t.all_switch_distances();
  for (const HostId src : {HostId{0}, HostId{100}, HostId{511}}) {
    const SwitchId ss = t.host(src).sw;
    for (int i = 0; i < 2000; ++i) {
      const HostId d = p.pick(src, rng);
      ASSERT_NE(d, src);
      const SwitchId ds = t.host(d).sw;
      EXPECT_LE(dist[static_cast<std::size_t>(ss) * 64 +
                     static_cast<std::size_t>(ds)],
                3);
    }
  }
}

TEST(Local, FourSwitchVariantReachesFurther) {
  const Topology t = make_torus_2d(8, 8, 8);
  LocalPattern p3(t, 3);
  LocalPattern p4(t, 4);
  Rng rng(6);
  const auto dist = t.all_switch_distances();
  auto max_seen = [&](LocalPattern& p) {
    int best = 0;
    for (int i = 0; i < 4000; ++i) {
      const HostId d = p.pick(0, rng);
      best = std::max(best, dist[static_cast<std::size_t>(t.host(d).sw)]);
    }
    return best;
  };
  EXPECT_EQ(max_seen(p3), 3);
  EXPECT_EQ(max_seen(p4), 4);
}

TEST(Permutation, MapsAndSkipsSelf) {
  PermutationPattern p({1, 0, 2, 3}, "swap01");
  Rng rng(1);
  EXPECT_EQ(p.pick(0, rng), 1);
  EXPECT_EQ(p.pick(1, rng), 0);
  EXPECT_EQ(p.pick(2, rng), kNoHost);
  EXPECT_EQ(p.name(), "swap01");
}

// ---- generator ----

struct GenRig {
  Topology topo = make_torus_2d(4, 4, 2);
  UpDown ud{topo, 0};
  RouteSet routes{build_updown_routes(topo, SimpleRoutes(topo, ud))};
  Simulator sim;
  MyrinetParams params;
  Network net{sim, topo, routes, params, PathPolicy::kSingle};
};

TEST(Generator, IntervalFromLoad) {
  GenRig rig;
  UniformPattern pat(rig.topo.num_hosts());
  TrafficConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.01;
  cfg.payload_bytes = 512;
  TrafficGenerator gen(rig.sim, rig.net, pat, cfg);
  // 0.01 * 16 switches / 32 hosts = 0.005 flits/ns/host ->
  // 512 flits / 0.005 = 102.4 us between messages.
  EXPECT_EQ(gen.interval(), 102400000);
}

TEST(Generator, MessageCountTracksLoad) {
  GenRig rig;
  UniformPattern pat(rig.topo.num_hosts());
  TrafficConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.01;
  cfg.payload_bytes = 512;
  cfg.seed = 9;
  TrafficGenerator gen(rig.sim, rig.net, pat, cfg);
  gen.start();
  rig.sim.run_until(ms(2));
  // Expected: 32 hosts * 2 ms / 102.4 us = 625 messages; phases randomise
  // the first interval, so allow a few percent.
  EXPECT_NEAR(static_cast<double>(gen.messages_generated()), 625.0, 35.0);
  EXPECT_EQ(gen.flits_generated(), gen.messages_generated() * 512);
}

TEST(Generator, StopHaltsGeneration) {
  GenRig rig;
  UniformPattern pat(rig.topo.num_hosts());
  TrafficConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.05;
  TrafficGenerator gen(rig.sim, rig.net, pat, cfg);
  gen.start();
  rig.sim.run_until(ms(1));
  gen.stop();
  const auto at_stop = gen.messages_generated();
  rig.sim.run_until(ms(3));
  EXPECT_EQ(gen.messages_generated(), at_stop);
  EXPECT_EQ(rig.net.packets_in_flight(), 0u) << "network must drain";
  EXPECT_EQ(rig.net.packets_delivered(), rig.net.packets_injected());
}

TEST(Generator, PoissonMeanMatches) {
  GenRig rig;
  UniformPattern pat(rig.topo.num_hosts());
  TrafficConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.02;
  cfg.poisson = true;
  cfg.seed = 4;
  TrafficGenerator gen(rig.sim, rig.net, pat, cfg);
  gen.start();
  rig.sim.run_until(ms(4));
  // 0.02*16/32 = 0.01 flits/ns/host -> 51.2 us mean interval ->
  // 32 hosts * 4 ms / 51.2 us = 2500 expected messages.
  EXPECT_NEAR(static_cast<double>(gen.messages_generated()), 2500.0, 150.0);
}

TEST(Generator, DeterministicPerSeed) {
  auto fingerprint = [](std::uint64_t seed) {
    GenRig rig;
    UniformPattern pat(rig.topo.num_hosts());
    MetricsCollector m(rig.topo.num_switches());
    m.attach(rig.net);
    TrafficConfig cfg;
    cfg.load_flits_per_ns_per_switch = 0.02;
    cfg.seed = seed;
    TrafficGenerator gen(rig.sim, rig.net, pat, cfg);
    gen.start();
    rig.sim.run_until(ms(2));
    return std::make_pair(gen.messages_generated(), m.avg_latency_ns());
  };
  EXPECT_EQ(fingerprint(5), fingerprint(5));
  // Different seeds shift phases and destinations: the latency average is
  // a continuous fingerprint and will not coincide.
  EXPECT_NE(fingerprint(5).second, fingerprint(6).second);
}

TEST(Generator, RejectsBadConfig) {
  GenRig rig;
  UniformPattern pat(rig.topo.num_hosts());
  TrafficConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.0;
  EXPECT_THROW(TrafficGenerator(rig.sim, rig.net, pat, cfg),
               std::invalid_argument);
}

TEST(Generator, BitReversalFixedPointsGenerateNothing) {
  // On a 4x4 torus with 2 hosts per switch (32 hosts, 5 bits) the
  // palindromic sources stay silent; total generated < full rate.
  GenRig rig;
  BitReversalPattern pat(rig.topo.num_hosts());
  TrafficConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.02;
  TrafficGenerator gen(rig.sim, rig.net, pat, cfg);
  gen.start();
  rig.sim.run_until(ms(2));
  // 5-bit palindromes: 2^3 = 8 of 32 hosts are fixed points -> 25% less.
  const double full = 32.0 * to_ns(ms(2)) / to_ns(gen.interval());
  EXPECT_NEAR(static_cast<double>(gen.messages_generated()), full * 0.75,
              full * 0.06);
}

}  // namespace
}  // namespace itb
