// Analytical cross-checks: the closed-form zero-load latency model must
// match the simulator flit for flit, and the static bottleneck bound must
// dominate and order the measured saturation throughputs.
#include <gtest/gtest.h>

#include "analysis/channel_load.hpp"
#include "analysis/zero_load.hpp"
#include "core/route_builder.hpp"
#include "harness/runner.hpp"
#include "harness/testbed.hpp"
#include "net/network.hpp"
#include "route/simple_routes.hpp"
#include "sim/simulator.hpp"
#include "topo/generators.hpp"
#include "traffic/patterns.hpp"

namespace itb {
namespace {

struct Capture {
  std::vector<DeliveryRecord> records;
  void attach(Network& net) {
    net.set_delivery_callback(
        [this](const DeliveryRecord& r) { records.push_back(r); });
  }
};

// Simulate one packet over `route_src` -> `route_dst` hosts and compare
// with the model.  Requires an idle network and chunk = 1.
void check_pair(const Topology& topo, const RouteSet& routes, HostId src,
                HostId dst, int payload) {
  MyrinetParams params;
  params.chunk_flits = 1;
  Simulator sim;
  Network net(sim, topo, routes, params, PathPolicy::kSingle);
  Capture cap;
  cap.attach(net);
  net.inject(src, dst, payload);
  sim.run_until(ms(5));
  ASSERT_EQ(cap.records.size(), 1u) << src << "->" << dst;
  const RouteView route =
      routes.alternatives(topo.host(src).sw, topo.host(dst).sw).front();
  const TimePs predicted = zero_load_latency(topo, route, payload, params);
  EXPECT_EQ(cap.records[0].deliver_time - cap.records[0].inject_time,
            predicted)
      << src << "->" << dst << " payload " << payload;
}

TEST(ZeroLoad, MatchesSimulatorOnTorusUpdown) {
  const Topology topo = make_torus_2d(4, 4, 2);
  const UpDown ud(topo, 0);
  const RouteSet routes = build_updown_routes(topo, SimpleRoutes(topo, ud));
  for (const auto& [s, d] : std::vector<std::pair<HostId, HostId>>{
           {0, 1}, {0, 31}, {5, 26}, {12, 19}, {30, 2}}) {
    check_pair(topo, routes, s, d, 512);
  }
}

TEST(ZeroLoad, MatchesSimulatorOnTorusItbRoutes) {
  const Topology topo = make_torus_2d(8, 8, 2);
  const UpDown ud(topo, 0);
  const RouteSet routes = build_itb_routes(topo, ud);
  // Sample pairs; several will involve in-transit hosts.
  int itb_pairs_checked = 0;
  for (HostId s = 0; s < 128; s += 17) {
    for (HostId d = 3; d < 128; d += 29) {
      if (s == d || topo.host(s).sw == topo.host(d).sw) continue;
      check_pair(topo, routes, s, d, 512);
      if (routes.alternatives(topo.host(s).sw, topo.host(d).sw)
              .front()
              .num_itbs() > 0) {
        ++itb_pairs_checked;
      }
    }
  }
  EXPECT_GT(itb_pairs_checked, 3)
      << "sample must include in-transit routes for the test to bite";
}

TEST(ZeroLoad, MatchesSimulatorOnExpressTorus) {
  const Topology topo = make_torus_2d_express(8, 8, 2);
  const UpDown ud(topo, 0);
  const RouteSet routes = build_itb_routes(topo, ud);
  for (const auto& [s, d] : std::vector<std::pair<HostId, HostId>>{
           {0, 127}, {3, 66}, {40, 90}, {111, 22}}) {
    check_pair(topo, routes, s, d, 512);
  }
}

TEST(ZeroLoad, MatchesSimulatorOnCplant) {
  const Topology topo = make_cplant();
  const UpDown ud(topo, 0);
  const RouteSet routes = build_itb_routes(topo, ud);
  for (const auto& [s, d] : std::vector<std::pair<HostId, HostId>>{
           {0, 399}, {10, 250}, {100, 300}, {350, 17}}) {
    check_pair(topo, routes, s, d, 512);
  }
}

TEST(ZeroLoad, PayloadVariants) {
  const Topology topo = make_torus_2d(4, 4, 2);
  const UpDown ud(topo, 0);
  const RouteSet routes = build_itb_routes(topo, ud);
  for (const int payload : {32, 512, 1024}) {
    check_pair(topo, routes, 0, 27, payload);
  }
}

TEST(ZeroLoad, AverageIsWeightedAndPositive) {
  const Topology topo = make_torus_2d(4, 4, 2);
  const UpDown ud(topo, 0);
  const RouteSet ud_routes = build_updown_routes(topo, SimpleRoutes(topo, ud));
  const RouteSet itb_routes = build_itb_routes(topo, ud);
  MyrinetParams params;
  const double avg_ud =
      average_zero_load_latency_ns(topo, ud_routes, 512, params);
  const double avg_itb =
      average_zero_load_latency_ns(topo, itb_routes, 512, params);
  EXPECT_GT(avg_ud, 3000.0);
  EXPECT_LT(avg_ud, 10000.0);
  // ITB routes are shorter on average but pay the in-transit overhead;
  // both averages must be in the same ballpark.
  EXPECT_NEAR(avg_itb, avg_ud, 1500.0);
}

TEST(ChannelLoad, UniformTorusBasics) {
  const Topology topo = make_torus_2d(8, 8, 8);
  const UpDown ud(topo, 0);
  const RouteSet itb = build_itb_routes(topo, ud);
  UniformPattern pattern(topo.num_hosts());
  const auto model = compute_channel_load(topo, itb, PathPolicy::kRoundRobin,
                                          pattern, 1, 100000);
  // Expected hops match the average minimal distance over sampled pairs:
  // 4.06 over distinct-switch pairs, shaved slightly by same-switch pairs
  // (hosts are uniform, so ~1.4% of messages stay on their switch).
  EXPECT_NEAR(model.expected_hops, 4.06 * 504.0 / 511.0, 0.1);
  // Expected ITBs per *packet* sit between the alternative-0 mean and the
  // route-weighted all-alternatives mean (pairs with many alternatives
  // contribute more routes to the latter than traffic to the former).
  const auto sp_model = compute_channel_load(topo, itb, PathPolicy::kSingle,
                                             pattern, 1, 100000);
  EXPECT_GT(model.expected_itbs, sp_model.expected_itbs);
  EXPECT_GT(model.expected_itbs, 0.40);
  EXPECT_LT(model.expected_itbs, 0.70);
  EXPECT_GT(model.throughput_bound, 0.0);
  EXPECT_GE(model.bottleneck, 0);
}

TEST(ChannelLoad, BoundDominatesMeasuredSaturation) {
  Testbed tb(make_torus_2d(8, 8, 8));
  UniformPattern pattern(tb.topo().num_hosts());
  for (const RoutingScheme scheme :
       {RoutingScheme::kUpDown, RoutingScheme::kItbRr}) {
    const auto model =
        compute_channel_load(tb.topo(), tb.routes(scheme), policy_of(scheme),
                             pattern, 1, 100000);
    RunConfig cfg;
    cfg.warmup = us(100);
    cfg.measure = us(250);
    cfg.load_flits_per_ns_per_switch = model.throughput_bound * 1.2;
    const RunResult over = run_point(tb, scheme, pattern, cfg);
    EXPECT_LE(over.accepted, model.throughput_bound * 1.05)
        << to_string(scheme)
        << ": simulation cannot beat the physical bound";
  }
}

TEST(ChannelLoad, OrdersSchemesLikeTheSimulator) {
  // The static model must agree that ITB-RR's bottleneck is cooler than
  // UP/DOWN's on the torus under uniform traffic.
  const Topology topo = make_torus_2d(8, 8, 8);
  const UpDown ud(topo, 0);
  const RouteSet udr = build_updown_routes(topo, SimpleRoutes(topo, ud));
  const RouteSet itb = build_itb_routes(topo, ud);
  UniformPattern pattern(topo.num_hosts());
  const auto m_ud =
      compute_channel_load(topo, udr, PathPolicy::kSingle, pattern, 1, 100000);
  const auto m_rr = compute_channel_load(topo, itb, PathPolicy::kRoundRobin,
                                         pattern, 1, 100000);
  EXPECT_GT(m_rr.throughput_bound, 1.3 * m_ud.throughput_bound);
}

TEST(ChannelLoad, HotspotBottleneckIsTheHotspotAccessLink) {
  const Topology topo = make_torus_2d(8, 8, 8);
  const UpDown ud(topo, 0);
  const RouteSet itb = build_itb_routes(topo, ud);
  const HostId hotspot = 137;
  HotspotPattern pattern(topo.num_hosts(), hotspot, 0.3);
  const auto model = compute_channel_load(topo, itb, PathPolicy::kRoundRobin,
                                          pattern, 1, 100000);
  // The delivery channel into the hotspot host must be the bottleneck.
  EXPECT_EQ(model.bottleneck,
            topo.channel_from(topo.host(hotspot).cable, true));
}

TEST(ChannelLoad, DeterministicPerSeed) {
  const Topology topo = make_torus_2d(4, 4, 2);
  const UpDown ud(topo, 0);
  const RouteSet itb = build_itb_routes(topo, ud);
  UniformPattern pattern(topo.num_hosts());
  const auto a =
      compute_channel_load(topo, itb, PathPolicy::kRoundRobin, pattern, 7, 20000);
  const auto b =
      compute_channel_load(topo, itb, PathPolicy::kRoundRobin, pattern, 7, 20000);
  EXPECT_EQ(a.crossings_per_packet, b.crossings_per_packet);
  EXPECT_EQ(a.bottleneck, b.bottleneck);
}

}  // namespace
}  // namespace itb
