// The forward-progress watchdog, including a constructed true deadlock:
// four wormholes chasing each other around a ring with illegally cyclic
// routes — precisely the dependency cycle the up*/down* rule forbids.
#include <gtest/gtest.h>

#include <string>

#include "core/route_builder.hpp"
#include "core/route_set.hpp"
#include "net/network.hpp"
#include "net/stall_detector.hpp"
#include "route/simple_routes.hpp"
#include "sim/simulator.hpp"
#include "topo/generators.hpp"

namespace itb {
namespace {

// 4-switch ring, one host per switch.
Topology make_ring4() {
  Topology t(4, 4, "ring4");
  t.connect_auto(0, 1);
  t.connect_auto(1, 2);
  t.connect_auto(2, 3);
  t.connect_auto(3, 0);
  for (SwitchId s = 0; s < 4; ++s) t.attach_hosts(s, 1);
  return t;
}

// Routing table where every pair is reached CLOCKWISE, even when the
// counter-clockwise path is shorter.  The 3-hop routes create the cyclic
// channel dependency 0->1->2->3->0.
RouteSet make_cyclic_routes(const Topology& t) {
  NestedRouteTable nested(4, RoutingAlgorithm::kUpDown);
  auto clockwise_port = [&](SwitchId from) {
    const SwitchId next = (from + 1) % 4;
    for (const PortId p : t.switch_ports_of(from)) {
      if (t.peer(from, p).sw == next) return p;
    }
    ADD_FAILURE() << "ring port missing";
    return PortId{0};
  };
  for (SwitchId s = 0; s < 4; ++s) {
    for (SwitchId d = 0; d < 4; ++d) {
      Route r;
      r.src_switch = s;
      r.dst_switch = d;
      RouteLeg leg;
      r.switches.push_back(s);
      for (SwitchId at = s; at != d; at = (at + 1) % 4) {
        leg.ports.push_back(clockwise_port(at));
        ++leg.switch_hops;
        r.switches.push_back((at + 1) % 4);
      }
      r.total_switch_hops = leg.switch_hops;
      r.legs.push_back(std::move(leg));
      nested.mutable_alternatives(s, d).push_back(std::move(r));
    }
  }
  return RouteSet(nested);
}

TEST(StallDetector, QuietOnHealthyTraffic) {
  Topology topo = make_ring4();
  UpDown ud(topo, 0);
  RouteSet routes = build_updown_routes(topo, SimpleRoutes(topo, ud));
  Simulator sim;
  MyrinetParams params;
  Network net(sim, topo, routes, params, PathPolicy::kSingle);
  int stalls = 0;
  StallDetector watchdog(sim, net, us(50),
                         [&](const std::string&) { ++stalls; });
  for (int i = 0; i < 20; ++i) {
    net.inject(0, 2, 512);
    net.inject(1, 3, 512);
    net.inject(2, 0, 512);
    net.inject(3, 1, 512);
  }
  sim.run_until(ms(2));
  EXPECT_EQ(net.packets_in_flight(), 0u);
  EXPECT_EQ(stalls, 0);
  EXPECT_FALSE(watchdog.stalled());
}

TEST(StallDetector, DetectsConstructedRoutingDeadlock) {
  // All four hosts simultaneously send a 512-byte worm three hops
  // clockwise.  Each worm grabs its first fabric channel and waits for
  // the next one, which its neighbour holds: a textbook cyclic channel
  // dependency.  The slack buffers (80 flits << 517-flit worms) fill,
  // stop&go freezes every sender, and nothing is ever delivered.
  Topology topo = make_ring4();
  RouteSet routes = make_cyclic_routes(topo);
  Simulator sim;
  MyrinetParams params;
  Network net(sim, topo, routes, params, PathPolicy::kSingle);
  std::string report;
  StallDetector watchdog(sim, net, us(50), [&](const std::string& r) {
    if (report.empty()) report = r;
  });
  for (HostId h = 0; h < 4; ++h) {
    net.inject(h, static_cast<HostId>((h + 3) % 4), 512);
  }
  sim.run_until(ms(2));
  EXPECT_TRUE(watchdog.stalled());
  EXPECT_GE(watchdog.stall_episodes(), 1);
  EXPECT_EQ(net.packets_delivered(), 0u);
  EXPECT_EQ(net.packets_in_flight(), 4u);
  // Even deadlocked, flow control must never overflow a slack buffer.
  EXPECT_EQ(net.flow_control_violations(), 0u);
  EXPECT_LE(net.max_buffer_occupancy(), 80);
  // The report carries the channel dump for post-mortems.
  EXPECT_NE(report.find("in flight"), std::string::npos);
  EXPECT_NE(report.find("owner=pkt"), std::string::npos);
}

TEST(StallDetector, LegalRoutesOnTheSameRingDoNotDeadlock) {
  // Control experiment: identical topology and demands, but up*/down*
  // legal routes (which refuse one of the ring directions somewhere).
  Topology topo = make_ring4();
  UpDown ud(topo, 0);
  RouteSet routes = build_updown_routes(topo, SimpleRoutes(topo, ud));
  Simulator sim;
  MyrinetParams params;
  Network net(sim, topo, routes, params, PathPolicy::kSingle);
  int stalls = 0;
  StallDetector watchdog(sim, net, us(50),
                         [&](const std::string&) { ++stalls; });
  for (HostId h = 0; h < 4; ++h) {
    net.inject(h, static_cast<HostId>((h + 3) % 4), 512);
  }
  sim.run_until(ms(2));
  EXPECT_EQ(net.packets_in_flight(), 0u);
  EXPECT_EQ(net.packets_delivered(), 4u);
  EXPECT_EQ(stalls, 0);
}

TEST(StallDetector, DisarmStopsSampling) {
  Topology topo = make_ring4();
  RouteSet routes = make_cyclic_routes(topo);
  Simulator sim;
  MyrinetParams params;
  Network net(sim, topo, routes, params, PathPolicy::kSingle);
  int stalls = 0;
  StallDetector watchdog(sim, net, us(50),
                         [&](const std::string&) { ++stalls; });
  watchdog.disarm();
  for (HostId h = 0; h < 4; ++h) {
    net.inject(h, static_cast<HostId>((h + 3) % 4), 512);
  }
  sim.run_until(ms(1));
  EXPECT_EQ(stalls, 0) << "disarmed detector must stay silent";
}

}  // namespace
}  // namespace itb
