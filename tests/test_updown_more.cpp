// Additional up*/down* coverage: root choice, k-ary family, and the
// relationship between tree structure and path restriction.
#include <gtest/gtest.h>

#include <algorithm>

#include "route/minimal_paths.hpp"
#include "route/updown.hpp"
#include "topo/generators.hpp"

namespace itb {
namespace {

TEST(UpDownRoot, DifferentRootsChangeOrientation) {
  const Topology t = make_torus_2d(4, 4, 1);
  const UpDown a(t, 0);
  const UpDown b(t, 10);
  EXPECT_EQ(a.root(), 0);
  EXPECT_EQ(b.root(), 10);
  EXPECT_EQ(b.level(10), 0);
  int differing = 0;
  for (CableId c = 0; c < t.num_cables(); ++c) {
    if (t.cable(c).to_host()) continue;
    if (a.up_end(c) != b.up_end(c)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(UpDownRoot, RestrictionSimilarAcrossRootsOnSymmetricTorus) {
  // On a vertex-transitive topology the fraction of pairs with a legal
  // minimal path is root-independent.
  const Topology t = make_torus_2d(4, 4, 1);
  auto minimal_fraction = [&](SwitchId root) {
    const UpDown ud(t, root);
    const auto all = t.all_switch_distances();
    int minimal = 0, pairs = 0;
    for (SwitchId s = 0; s < 16; ++s) {
      const auto legal = ud.legal_distances_from(s);
      for (SwitchId d = 0; d < 16; ++d) {
        if (s == d) continue;
        ++pairs;
        if (legal[static_cast<std::size_t>(d)] ==
            all[static_cast<std::size_t>(s) * 16 +
                static_cast<std::size_t>(d)]) {
          ++minimal;
        }
      }
    }
    return static_cast<double>(minimal) / pairs;
  };
  const double f0 = minimal_fraction(0);
  for (const SwitchId root : {5, 10, 15}) {
    EXPECT_DOUBLE_EQ(minimal_fraction(root), f0) << "root " << root;
  }
}

TEST(UpDownKary, ThreeDTorusRestrictionBetween2DAndHypercube) {
  // More dimensions -> more path diversity -> milder up*/down*
  // restriction.  Compare legal-minimal fractions at 64 switches.
  auto fraction = [](const Topology& t) {
    const UpDown ud(t, 0);
    const auto all = t.all_switch_distances();
    const int n = t.num_switches();
    int minimal = 0, pairs = 0;
    for (SwitchId s = 0; s < n; ++s) {
      const auto legal = ud.legal_distances_from(s);
      for (SwitchId d = 0; d < n; ++d) {
        if (s == d) continue;
        ++pairs;
        if (legal[static_cast<std::size_t>(d)] ==
            all[static_cast<std::size_t>(s) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(d)]) {
          ++minimal;
        }
      }
    }
    return static_cast<double>(minimal) / pairs;
  };
  const double torus2d = fraction(make_torus_2d(8, 8, 1));
  const double torus3d = fraction(make_kary_ncube(4, 3, 1));
  const double cube6 = fraction(make_kary_ncube(2, 6, 1, 8));
  EXPECT_GT(torus3d, torus2d);
  // Short rings (k=4) and hypercubes are both fully unrestricted; the
  // 8-ary 2-cube with its long rings is the constrained one.
  EXPECT_GE(cube6, torus3d);
  EXPECT_GT(cube6, 0.95) << "hypercubes are nearly unrestricted";
  EXPECT_LT(torus2d, 0.9);
}

TEST(UpDownKary, RingHasIllegalMinimalPairs) {
  // On a ring the up*/down* cut forbids minimal paths crossing the
  // "back" of the ring in one direction.
  const Topology t = make_kary_ncube(8, 1, 1, 8);
  const UpDown ud(t, 0);
  const auto all = t.all_switch_distances();
  int illegal_minimal = 0;
  for (SwitchId s = 0; s < 8; ++s) {
    const auto legal = ud.legal_distances_from(s);
    for (SwitchId d = 0; d < 8; ++d) {
      if (s == d) continue;
      if (legal[static_cast<std::size_t>(d)] >
          all[static_cast<std::size_t>(s) * 8 + static_cast<std::size_t>(d)]) {
        ++illegal_minimal;
      }
    }
  }
  EXPECT_GT(illegal_minimal, 0);
}

TEST(UpDownKary, EveryPairReachableOnAllFamilies) {
  for (const auto& t :
       {make_kary_ncube(3, 2, 1, 8), make_kary_ncube(4, 3, 1),
        make_kary_ncube(2, 5, 1, 8), make_kary_ncube(5, 2, 1, 8)}) {
    const UpDown ud(t, 0);
    for (SwitchId s = 0; s < t.num_switches(); s += 3) {
      const auto legal = ud.legal_distances_from(s);
      for (SwitchId d = 0; d < t.num_switches(); ++d) {
        EXPECT_GE(legal[static_cast<std::size_t>(d)], 0)
            << t.name() << " " << s << "->" << d;
      }
    }
  }
}

TEST(MinimalPathsRotation, RotationsEnumerateTheSameSet) {
  const Topology t = make_torus_2d(5, 5, 1);
  for (SwitchId d : {SwitchId{6}, SwitchId{18}}) {
    auto base = enumerate_minimal_paths(t, 0, d, 100, 0);
    std::sort(base.begin(), base.end(),
              [](const SwitchPath& a, const SwitchPath& b) {
                return a.cable < b.cable;
              });
    for (const unsigned rot : {1u, 7u, 123u}) {
      auto rotated = enumerate_minimal_paths(t, 0, d, 100, rot);
      EXPECT_EQ(rotated.size(), base.size());
      std::sort(rotated.begin(), rotated.end(),
                [](const SwitchPath& a, const SwitchPath& b) {
                  return a.cable < b.cable;
                });
      EXPECT_EQ(rotated, base) << "rotation " << rot;
    }
  }
}

TEST(MinimalPathsRotation, RotationChangesTheFirstPath) {
  const Topology t = make_torus_2d(8, 8, 1);
  int changed = 0;
  for (SwitchId d : {SwitchId{9}, SwitchId{18}, SwitchId{27}}) {
    const auto a = enumerate_minimal_paths(t, 0, d, 1, 0);
    const auto b = enumerate_minimal_paths(t, 0, d, 1, 1);
    if (!(a == b)) ++changed;
  }
  EXPECT_GT(changed, 0) << "rotation must actually spread first choices";
}

}  // namespace
}  // namespace itb
