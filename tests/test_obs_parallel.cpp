// Shard-aware telemetry suite: tracing and profiling now run SHARDED — each
// parallel-engine lane writes its own bounded ring / profiler, and the
// harness merges them at harvest.  The headline contract mirrors the
// engine's own: a traced K-sharded run emits the SAME logical lifecycle
// stream as a traced serial run — record-identical after the (time, key)
// merge and the dense packet-id renumber — on the paper's testbeds, with
// deep checks on.  The suite also pins the per-lane ring accounting, the
// lane-profiler aggregation, telemetry purity under sharding (traced vs
// untraced sharded runs are bit-identical in every simulated metric), and
// the Perfetto per-lane / engine-health track emission.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "net/params.hpp"
#include "obs/perfetto.hpp"
#include "obs/trace.hpp"
#include "sim/workspace.hpp"
#include "topo/generators.hpp"
#include "traffic/patterns.hpp"

namespace itb {
namespace {

RunConfig traced_config(EngineKind engine, int shards) {
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.02;
  cfg.warmup = us(30);
  cfg.measure = us(80);
  cfg.engine = engine;
  cfg.shards = shards;
  cfg.checked = true;
  cfg.trace = true;
  return cfg;
}

/// Records equal on every logical field.  `lane` is deliberately excluded:
/// it reports WHERE the record was written (execution telemetry), while the
/// differential below asserts WHAT was recorded.
bool same_record(const PacketTraceRecord& a, const PacketTraceRecord& b) {
  return a.t == b.t && a.packet == b.packet && a.ch == b.ch && a.sw == b.sw &&
         a.host == b.host && a.kind == b.kind;
}

void expect_identical_streams(const std::vector<PacketTraceRecord>& serial,
                              const std::vector<PacketTraceRecord>& sharded) {
  ASSERT_EQ(serial.size(), sharded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(same_record(serial[i], sharded[i]))
        << "record " << i << " diverges: serial t=" << serial[i].t
        << " pkt=" << serial[i].packet << " kind="
        << to_string(serial[i].kind) << " vs sharded t=" << sharded[i].t
        << " pkt=" << sharded[i].packet << " kind="
        << to_string(sharded[i].kind);
  }
}

/// Sort key over a record's full logical content — used to compare
/// same-picosecond groups as sets when cross-lane ties permuted them.
bool content_less(const PacketTraceRecord& a, const PacketTraceRecord& b) {
  if (a.packet != b.packet) return a.packet < b.packet;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.ch != b.ch) return a.ch < b.ch;
  if (a.sw != b.sw) return a.sw < b.sw;
  return a.host < b.host;
}

/// Streams equal up to permutation WITHIN each picosecond: the relative
/// order of same-instant cross-lane events is the one thing the shard key
/// leaves open (counted in boundary_ties; see sim/parallel_engine.hpp).
/// Every cross-picosecond ordering, every record's content and every
/// renumbered packet id must still match exactly.
void expect_equivalent_streams(std::vector<PacketTraceRecord> serial,
                               std::vector<PacketTraceRecord> sharded) {
  ASSERT_EQ(serial.size(), sharded.size());
  std::size_t i = 0;
  while (i < serial.size()) {
    std::size_t j = i;
    while (j < serial.size() && serial[j].t == serial[i].t) ++j;
    ASSERT_EQ(sharded[i].t, serial[i].t) << "group start " << i;
    ASSERT_TRUE(j == sharded.size() || sharded[j].t != sharded[i].t)
        << "group width diverges at record " << i;
    std::sort(serial.begin() + static_cast<std::ptrdiff_t>(i),
              serial.begin() + static_cast<std::ptrdiff_t>(j), content_less);
    std::sort(sharded.begin() + static_cast<std::ptrdiff_t>(i),
              sharded.begin() + static_cast<std::ptrdiff_t>(j), content_less);
    for (std::size_t k = i; k < j; ++k) {
      ASSERT_TRUE(same_record(serial[k], sharded[k]))
          << "record " << k << " (t=" << serial[k].t << ") diverges";
    }
    i = j;
  }
}

/// The tentpole differential: serial traced vs K-sharded traced, same
/// point, merged stream record-identical (and the bookkeeping sums match).
/// Runs with same-picosecond cross-lane push ties — CPLANT under
/// round-robin — are compared up to within-picosecond permutation instead,
/// which is exactly the slack boundary_ties reports.
void expect_trace_matches_serial(const Testbed& tb, RoutingScheme scheme,
                                 bool expect_exact) {
  UniformPattern pat(tb.topo().num_hosts());
  SimWorkspace ws;
  const RunResult serial =
      run_point_in(ws, tb, scheme, pat, traced_config(EngineKind::kPod, 1));
  ASSERT_GT(serial.trace_records, 0u);
  ASSERT_EQ(serial.trace_dropped, 0u) << "grow trace_capacity for this test";
  for (const int shards : {2, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    SimWorkspace pws;
    const RunResult sharded = run_point_in(
        pws, tb, scheme, pat, traced_config(EngineKind::kPodParallel, shards));
    EXPECT_EQ(sharded.shards, static_cast<std::uint64_t>(shards));
    EXPECT_EQ(sharded.trace_records, serial.trace_records);
    EXPECT_EQ(sharded.trace_dropped, 0u);
    EXPECT_EQ(sharded.invariant_violations, 0u);
    if (expect_exact || sharded.boundary_ties == 0) {
      expect_identical_streams(serial.trace, sharded.trace);
    } else {
      expect_equivalent_streams(serial.trace, sharded.trace);
    }
  }
}

TEST(ShardedTrace, TorusMatchesSerial) {
  Testbed tb(make_torus_2d(4, 4, 4));
  expect_trace_matches_serial(tb, RoutingScheme::kItbSp,
                              /*expect_exact=*/true);
  expect_trace_matches_serial(tb, RoutingScheme::kItbRr,
                              /*expect_exact=*/true);
}

TEST(ShardedTrace, ExpressTorusMatchesSerial) {
  Testbed tb(make_torus_2d_express(5, 5, 4));
  expect_trace_matches_serial(tb, RoutingScheme::kItbSp,
                              /*expect_exact=*/true);
}

TEST(ShardedTrace, CplantMatchesSerial) {
  Testbed tb(make_cplant());
  // Single-path: no same-instant cross-lane pushes, exact identity.
  expect_trace_matches_serial(tb, RoutingScheme::kItbSp,
                              /*expect_exact=*/true);
  // Round-robin lands same-picosecond cross-lane pushes (boundary_ties);
  // identity then holds up to within-picosecond permutation.
  expect_trace_matches_serial(tb, RoutingScheme::kItbRr,
                              /*expect_exact=*/false);
}

// A sharded run's lane byte is populated: at K=8 on the torus more than one
// lane must have written records, and every lane id is in range.
TEST(ShardedTrace, RecordsCarryTheirLane) {
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  SimWorkspace ws;
  const RunResult r = run_point_in(ws, tb, RoutingScheme::kItbSp, pat,
                                   traced_config(EngineKind::kPodParallel, 8));
  ASSERT_EQ(r.shards, 8u);
  std::vector<bool> seen(8, false);
  for (const PacketTraceRecord& rec : r.trace) {
    ASSERT_LT(rec.lane, 8);
    seen[rec.lane] = true;
  }
  int lanes_writing = 0;
  for (const bool s : seen) lanes_writing += s ? 1 : 0;
  EXPECT_GT(lanes_writing, 1);
}

// Per-lane ring accounting: with a tiny per-lane capacity the rings wrap,
// recorded() still counts every observation (the sum matches the serial
// record count), dropped() sums into trace_dropped, and the worst lane is
// surfaced separately.  The merged stream is the K most recent per-lane
// windows, still sorted by (t, key).
TEST(ShardedTrace, RingWrapAccounting) {
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());

  SimWorkspace sws;
  const RunResult serial = run_point_in(sws, tb, RoutingScheme::kItbSp, pat,
                                        traced_config(EngineKind::kPod, 1));

  RunConfig cfg = traced_config(EngineKind::kPodParallel, 4);
  cfg.trace_capacity = 64;  // tiny: every lane wraps
  SimWorkspace ws;
  const RunResult r = run_point_in(ws, tb, RoutingScheme::kItbSp, pat, cfg);
  ASSERT_EQ(r.shards, 4u);
  EXPECT_EQ(r.trace_records, serial.trace_records);
  EXPECT_GT(r.trace_dropped, 0u);
  EXPECT_EQ(r.trace_dropped + r.trace.size(), r.trace_records);
  EXPECT_GT(r.trace_dropped_max_lane, 0u);
  EXPECT_LE(r.trace_dropped_max_lane, r.trace_dropped);
  EXPECT_LE(r.trace.size(), std::size_t{4} * 64);
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_LE(r.trace[i - 1].t, r.trace[i].t);
  }
}

// Lane-profiler aggregation: the harvested profile is the element-wise sum
// of the coordinator's phases and every lane's.  Per-event phases
// (kEventDispatch) accrue on lanes, and the sharded call count reproduces
// the serial one exactly (same events, each dispatched on exactly one
// lane); harness phases (kWarmup / kMeasure) accrue once on the
// coordinator.
TEST(ShardedProfile, AggregationSumsLanes) {
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig cfg = traced_config(EngineKind::kPodParallel, 4);
  cfg.trace = false;
  cfg.profile = true;

  RunConfig serial_cfg = cfg;
  serial_cfg.engine = EngineKind::kPod;
  serial_cfg.shards = 1;

  SimWorkspace sws;
  const RunResult serial =
      run_point_in(sws, tb, RoutingScheme::kItbSp, pat, serial_cfg);
  SimWorkspace ws;
  const RunResult r = run_point_in(ws, tb, RoutingScheme::kItbSp, pat, cfg);
  ASSERT_EQ(r.shards, 4u);
  ASSERT_EQ(r.profile.size(), PhaseProfiler::kPhases);
  ASSERT_EQ(serial.profile.size(), PhaseProfiler::kPhases);

  const auto at = [&](const RunResult& rr, Phase p) {
    return rr.profile[static_cast<std::size_t>(p)];
  };
  EXPECT_EQ(at(r, Phase::kEventDispatch).calls,
            at(serial, Phase::kEventDispatch).calls);
  EXPECT_EQ(at(r, Phase::kRouteLookup).calls,
            at(serial, Phase::kRouteLookup).calls);
  EXPECT_GT(at(r, Phase::kEventDispatch).wall_ns, 0);
  EXPECT_EQ(at(r, Phase::kWarmup).calls, 1u);
  EXPECT_EQ(at(r, Phase::kMeasure).calls, 1u);
}

// Telemetry purity under sharding: a traced + profiled K-sharded run is
// bit-identical in every simulated metric to a bare K-sharded run — the
// per-lane rings observe, never perturb (the sharded sibling of
// test_obs.TracingDoesNotPerturbTheSimulation).
TEST(ShardedTelemetry, DoesNotPerturbTheSimulation) {
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig plain = traced_config(EngineKind::kPodParallel, 4);
  plain.trace = false;
  RunConfig full = traced_config(EngineKind::kPodParallel, 4);
  full.profile = true;

  SimWorkspace ws1;
  const RunResult a = run_point_in(ws1, tb, RoutingScheme::kItbRr, pat, plain);
  SimWorkspace ws2;
  const RunResult b = run_point_in(ws2, tb, RoutingScheme::kItbRr, pat, full);
  EXPECT_EQ(a.shards, 4u);
  EXPECT_EQ(b.shards, 4u);
  EXPECT_GT(b.trace_records, 0u);
  EXPECT_TRUE(same_simulated_metrics(a, b));
}

// Engine health scalars: a sharded point reports its barrier wall time,
// load balance and mailbox traffic; a serial point reports all-zero.
TEST(ShardedTelemetry, HealthScalarsPopulated) {
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  SimWorkspace ws;
  const RunResult r = run_point_in(ws, tb, RoutingScheme::kItbSp, pat,
                                   traced_config(EngineKind::kPodParallel, 4));
  ASSERT_EQ(r.shards, 4u);
  EXPECT_GT(r.barrier_wait_ms, 0.0);
  EXPECT_GE(r.lane_imbalance, 1.0);
  EXPECT_GT(r.mailbox_depth_peak, 0u);
  EXPECT_LE(r.cross_lane_credits, r.boundary_events);

  SimWorkspace sws;
  const RunResult s = run_point_in(sws, tb, RoutingScheme::kItbSp, pat,
                                   traced_config(EngineKind::kPod, 1));
  EXPECT_EQ(s.barrier_wait_ms, 0.0);
  EXPECT_EQ(s.lane_imbalance, 0.0);
  EXPECT_EQ(s.mailbox_depth_peak, 0u);
  EXPECT_EQ(s.trace_dropped_max_lane, 0u);
}

// Perfetto export of a sharded trace: lifecycle events land on per-lane
// tids (with matching thread-name metas), and passing the engine adds the
// per-lane health track group (pid 100+lane) with window and barrier
// slices.  A serial trace emits neither.
TEST(ShardedPerfetto, LaneAndHealthTracks) {
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  SimWorkspace ws;
  const RunResult r = run_point_in(ws, tb, RoutingScheme::kItbSp, pat,
                                   traced_config(EngineKind::kPodParallel, 4));
  ASSERT_EQ(r.shards, 4u);
  ASSERT_TRUE(ws.parallel());

  const std::string json =
      trace_to_chrome_json(r.trace, ws.net(), r.trace_dropped, &ws.engine());
  EXPECT_NE(json.find(R"("pid":2,"tid":1)"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"lane 1")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"lane 0 health")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"lane 3 health")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"window")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"barrier")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"mailbox")"), std::string::npos);

  // The raw CSV gains the lane column only for multi-lane traces.
  const std::string csv = trace_to_csv(r.trace);
  EXPECT_EQ(csv.rfind("t_ps,kind,packet,channel,switch,host,lane\n", 0), 0u);

  SimWorkspace sws;
  const RunResult s = run_point_in(sws, tb, RoutingScheme::kItbSp, pat,
                                   traced_config(EngineKind::kPod, 1));
  const std::string serial_json =
      trace_to_chrome_json(s.trace, sws.net(), s.trace_dropped);
  EXPECT_EQ(serial_json.find("health"), std::string::npos);
  EXPECT_EQ(serial_json.find(R"("name":"lane)"), std::string::npos);
  const std::string serial_csv = trace_to_csv(s.trace);
  EXPECT_EQ(serial_csv.rfind("t_ps,kind,packet,channel,switch,host\n", 0), 0u);
}

// The heatmap sampler under sharding: per-host ITB-pool vectors are
// captured at window-sync points and match the serial run's bit-for-bit
// (they are simulated quantities read when the lanes are quiescent).
TEST(ShardedHeatmap, MatchesSerialSamples) {
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig cfg = traced_config(EngineKind::kPod, 1);
  cfg.trace = false;
  cfg.sample_period = us(10);
  cfg.sample_link_util = true;
  cfg.sample_itb_pool = true;

  RunConfig pcfg = cfg;
  pcfg.engine = EngineKind::kPodParallel;
  pcfg.shards = 4;

  SimWorkspace sws;
  const RunResult serial =
      run_point_in(sws, tb, RoutingScheme::kItbRr, pat, cfg);
  SimWorkspace ws;
  const RunResult sharded =
      run_point_in(ws, tb, RoutingScheme::kItbRr, pat, pcfg);
  ASSERT_EQ(sharded.shards, 4u);
  ASSERT_EQ(serial.samples.size(), sharded.samples.size());
  ASSERT_FALSE(serial.samples.empty());
  for (std::size_t i = 0; i < serial.samples.size(); ++i) {
    const TimeSeriesSample& a = serial.samples[i];
    const TimeSeriesSample& b = sharded.samples[i];
    ASSERT_EQ(a.itb_pool.size(),
              static_cast<std::size_t>(tb.topo().num_hosts()));
    EXPECT_EQ(a.itb_pool, b.itb_pool);
    EXPECT_EQ(a.link_util, b.link_util);
  }
}

}  // namespace
}  // namespace itb
