// Topology substrate: construction invariants and the paper's generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/rng.hpp"
#include "topo/generators.hpp"
#include "topo/topology.hpp"

namespace itb {
namespace {

TEST(Topology, ConstructionBasics) {
  Topology t(4, 8, "quad");
  EXPECT_EQ(t.name(), "quad");
  EXPECT_EQ(t.num_switches(), 4);
  EXPECT_EQ(t.ports_per_switch(), 8);
  EXPECT_EQ(t.num_hosts(), 0);
  EXPECT_EQ(t.num_cables(), 0);
  EXPECT_EQ(t.free_ports(0), 8);
  EXPECT_TRUE(t.validate().empty());
}

TEST(Topology, RejectsBadSizes) {
  EXPECT_THROW(Topology(0, 8), std::invalid_argument);
  EXPECT_THROW(Topology(4, 0), std::invalid_argument);
}

TEST(Topology, ConnectWiresBothEnds) {
  Topology t(2, 4);
  const CableId c = t.connect(0, 1, 1, 2);
  const PortPeer& a = t.peer(0, 1);
  EXPECT_EQ(a.kind, PeerKind::kSwitch);
  EXPECT_EQ(a.sw, 1);
  EXPECT_EQ(a.port, 2);
  EXPECT_EQ(a.cable, c);
  const PortPeer& b = t.peer(1, 2);
  EXPECT_EQ(b.sw, 0);
  EXPECT_EQ(b.port, 1);
  EXPECT_EQ(t.switch_degree(0), 1);
  EXPECT_TRUE(t.validate().empty());
}

TEST(Topology, ConnectRefusesBusyPort) {
  Topology t(2, 4);
  t.connect(0, 0, 1, 0);
  EXPECT_THROW(t.connect(0, 0, 1, 1), std::invalid_argument);
  EXPECT_THROW(t.connect(1, 1, 1, 1), std::invalid_argument);  // self port
}

TEST(Topology, ConnectAutoUsesLowestFreePorts) {
  Topology t(2, 4);
  t.connect_auto(0, 1);
  t.connect_auto(0, 1);
  EXPECT_EQ(t.peer(0, 0).port, 0);
  EXPECT_EQ(t.peer(0, 1).port, 1);
  EXPECT_EQ(t.switch_degree(0), 2);
  EXPECT_TRUE(t.validate().empty());
}

TEST(Topology, ConnectAutoSelfNeedsTwoPorts) {
  Topology t(1, 4);
  const CableId c = t.connect_auto(0, 0);
  const Cable& cb = t.cable(c);
  EXPECT_NE(cb.a.port, cb.b.port);
  EXPECT_TRUE(t.validate().empty());
}

TEST(Topology, AttachHostAssignsDenseIds) {
  Topology t(2, 4);
  const HostId h0 = t.attach_host(0, 3);
  const HostId h1 = t.attach_host(1, 0);
  EXPECT_EQ(h0, 0);
  EXPECT_EQ(h1, 1);
  EXPECT_EQ(t.host(h0).sw, 0);
  EXPECT_EQ(t.host(h0).port, 3);
  EXPECT_EQ(t.hosts_of_switch(0), std::vector<HostId>{h0});
  EXPECT_TRUE(t.validate().empty());
}

TEST(Topology, PortTowardsAndChannels) {
  Topology t(2, 4);
  const CableId c = t.connect(0, 2, 1, 3);
  EXPECT_EQ(t.port_towards(0, c), 2);
  EXPECT_EQ(t.port_towards(1, c), 3);
  EXPECT_EQ(t.channel_from_switch(0, c), 2 * c);
  EXPECT_EQ(t.channel_from_switch(1, c), 2 * c + 1);
  EXPECT_EQ(t.num_channels(), 2);
}

TEST(Topology, DistancesBfs) {
  // 0 - 1 - 2 chain.
  Topology t(3, 4);
  t.connect_auto(0, 1);
  t.connect_auto(1, 2);
  const auto d = t.switch_distances_from(0);
  EXPECT_EQ(d, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(t.connected());
  const auto all = t.all_switch_distances();
  EXPECT_EQ(all[0 * 3 + 2], 2);
  EXPECT_EQ(all[2 * 3 + 0], 2);
}

TEST(Topology, DisconnectedDetected) {
  Topology t(3, 4);
  t.connect_auto(0, 1);
  EXPECT_FALSE(t.connected());
  EXPECT_EQ(t.switch_distances_from(0)[2], -1);
}

// ---- generators ----

TEST(Torus2D, PaperDimensions) {
  const Topology t = make_torus_2d(8, 8, 8);
  EXPECT_EQ(t.num_switches(), 64);
  EXPECT_EQ(t.num_hosts(), 512);
  // 2 fabric cables per switch created (+x, +y) plus 8 host cables.
  EXPECT_EQ(t.num_cables(), 64 * 2 + 512);
  EXPECT_TRUE(t.validate().empty());
  EXPECT_TRUE(t.connected());
  for (SwitchId s = 0; s < 64; ++s) {
    EXPECT_EQ(t.switch_degree(s), 4);
    EXPECT_EQ(t.hosts_of_switch(s).size(), 8u);
    EXPECT_EQ(t.free_ports(s), 4);  // paper: 4 ports left open
  }
}

TEST(Torus2D, WraparoundNeighbors) {
  const Topology t = make_torus_2d(8, 8, 1);
  // Switch 0 (row 0, col 0) must neighbour 1, 7, 8 and 56.
  auto n = t.switch_neighbors(0);
  std::sort(n.begin(), n.end());
  EXPECT_EQ(n, (std::vector<SwitchId>{1, 7, 8, 56}));
}

TEST(Torus2D, MaxDistanceIsHalfPerimeter) {
  const Topology t = make_torus_2d(8, 8, 1);
  const auto d = t.switch_distances_from(0);
  EXPECT_EQ(*std::max_element(d.begin(), d.end()), 8);  // 4 + 4
}

TEST(Torus2D, AverageDistanceMatchesClosedForm) {
  // Ring of 8 has mean one-way distance 2 per dimension; over ordered
  // pairs excluding self: 4 * 64 / 63 = 4.0635 (the paper's 4.06).
  const Topology t = make_torus_2d(8, 8, 1);
  const auto all = t.all_switch_distances();
  double sum = 0;
  for (int s = 0; s < 64; ++s) {
    for (int d = 0; d < 64; ++d) {
      if (s != d) sum += all[static_cast<std::size_t>(s) * 64 + d];
    }
  }
  EXPECT_NEAR(sum / (64 * 63), 4.0635, 0.001);
}

TEST(Torus2D, RejectsTooSmall) {
  EXPECT_THROW(make_torus_2d(1, 8, 1), std::invalid_argument);
}

TEST(TorusExpress, PaperDimensions) {
  const Topology t = make_torus_2d_express(8, 8, 8);
  EXPECT_EQ(t.num_switches(), 64);
  EXPECT_EQ(t.num_hosts(), 512);
  EXPECT_TRUE(t.validate().empty());
  EXPECT_TRUE(t.connected());
  for (SwitchId s = 0; s < 64; ++s) {
    EXPECT_EQ(t.switch_degree(s), 8);
    EXPECT_EQ(t.free_ports(s), 0);  // paper: all 16 ports used
  }
  // Twice the fabric links of the plain torus.
  EXPECT_EQ(t.num_cables() - 512, 2 * (make_torus_2d(8, 8, 8).num_cables() - 512));
}

TEST(TorusExpress, ExpressHalvesDistances) {
  const Topology plain = make_torus_2d(8, 8, 1);
  const Topology express = make_torus_2d_express(8, 8, 1);
  const auto dp = plain.switch_distances_from(0);
  const auto de = express.switch_distances_from(0);
  double sp = 0, se = 0;
  for (int i = 0; i < 64; ++i) {
    sp += dp[static_cast<std::size_t>(i)];
    se += de[static_cast<std::size_t>(i)];
    EXPECT_LE(de[static_cast<std::size_t>(i)], dp[static_cast<std::size_t>(i)]);
  }
  // "average distance to message destinations is almost reduced to the
  // half" (§4.7.1).
  EXPECT_LT(se, 0.65 * sp);
}

TEST(TorusExpress, SecondOrderNeighbors) {
  const Topology t = make_torus_2d_express(8, 8, 1);
  auto n = t.switch_neighbors(0);
  std::sort(n.begin(), n.end());
  EXPECT_EQ(n, (std::vector<SwitchId>{1, 2, 6, 7, 8, 16, 48, 56}));
}

TEST(TorusExpress, RejectsBelow5) {
  EXPECT_THROW(make_torus_2d_express(4, 8, 1), std::invalid_argument);
}

TEST(TorusExpress, BoundaryAtFive) {
  // 5 is the smallest extent where regular (+/-1) and express (+/-2)
  // neighbours are distinct in a ring: exactly at the boundary the
  // generator must succeed, one below it must throw.
  const Topology t = make_torus_2d_express(5, 5, 1);
  EXPECT_EQ(t.num_switches(), 25);
  EXPECT_TRUE(t.validate().empty());
  for (SwitchId s = 0; s < 25; ++s) EXPECT_EQ(t.switch_degree(s), 8);
  EXPECT_THROW(make_torus_2d_express(5, 4, 1), std::invalid_argument);
  EXPECT_THROW(make_torus_2d_express(4, 5, 1), std::invalid_argument);
}

TEST(TorusExpress, RejectionNamesTheOffendingValues) {
  // The message must carry the actual arguments, not just the rule.
  try {
    make_torus_2d_express(4, 9, 1);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rows=4"), std::string::npos) << what;
    EXPECT_NE(what.find("cols=9"), std::string::npos) << what;
  }
}

TEST(Cplant, PaperDimensions) {
  const Topology t = make_cplant();
  EXPECT_EQ(t.num_switches(), 50);
  EXPECT_EQ(t.num_hosts(), 400);  // 8 hosts on each of 50 switches
  EXPECT_EQ(t.ports_per_switch(), 16);
  EXPECT_TRUE(t.validate().empty());
  EXPECT_TRUE(t.connected());
  for (SwitchId s = 0; s < 50; ++s) {
    EXPECT_EQ(t.hosts_of_switch(s).size(), 8u);
  }
}

TEST(Cplant, GroupStructure) {
  const Topology t = make_cplant();
  // Intra-group: every switch in groups 0..5 has >= 4 same-group
  // neighbours (3-cube + complement).
  for (int g = 0; g < 6; ++g) {
    for (int i = 0; i < 8; ++i) {
      const SwitchId s = g * 8 + i;
      int intra = 0;
      for (const SwitchId n : t.switch_neighbors(s)) {
        if (n / 8 == g && n < 48) ++intra;
      }
      EXPECT_EQ(intra, 4) << "switch " << s;
    }
  }
  // Complement cable exists: switch i and i^7 adjacent within a group.
  for (int g = 0; g < 6; ++g) {
    const auto n = t.switch_neighbors(g * 8);
    EXPECT_NE(std::find(n.begin(), n.end(), g * 8 + 7), n.end());
  }
  // Extra switches 48/49 fan out to all of group 0 / group 1.
  auto n48 = t.switch_neighbors(48);
  std::sort(n48.begin(), n48.end());
  EXPECT_EQ(n48, (std::vector<SwitchId>{0, 1, 2, 3, 4, 5, 6, 7}));
  auto n49 = t.switch_neighbors(49);
  std::sort(n49.begin(), n49.end());
  EXPECT_EQ(n49, (std::vector<SwitchId>{8, 9, 10, 11, 12, 13, 14, 15}));
}

TEST(Cplant, PortBudgetRespected) {
  const Topology t = make_cplant();
  for (SwitchId s = 0; s < 50; ++s) {
    EXPECT_GE(t.free_ports(s), 0);
    EXPECT_LE(t.switch_degree(s) + 8, 16);
  }
}

TEST(Hypercube, StructureAndDistance) {
  const Topology t = make_hypercube(4, 2, 8);
  EXPECT_EQ(t.num_switches(), 16);
  EXPECT_EQ(t.num_hosts(), 32);
  EXPECT_TRUE(t.validate().empty());
  for (SwitchId s = 0; s < 16; ++s) EXPECT_EQ(t.switch_degree(s), 4);
  // Distance equals popcount of XOR.
  const auto d = t.switch_distances_from(0);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(d[static_cast<std::size_t>(i)], __builtin_popcount(i));
  }
}

TEST(Mesh2D, NoWraparound) {
  const Topology t = make_mesh_2d(3, 3, 1);
  EXPECT_EQ(t.num_switches(), 9);
  EXPECT_TRUE(t.validate().empty());
  EXPECT_EQ(t.switch_degree(0), 2);  // corner
  EXPECT_EQ(t.switch_degree(4), 4);  // centre
  const auto d = t.switch_distances_from(0);
  EXPECT_EQ(d[8], 4);  // opposite corner: Manhattan distance
}

class IrregularProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IrregularProperty, AlwaysConnectedAndValid) {
  Rng rng(GetParam());
  const Topology t = make_irregular(16, 4, 6, rng);
  EXPECT_TRUE(t.connected());
  EXPECT_TRUE(t.validate().empty());
  EXPECT_EQ(t.num_hosts(), 64);
  for (SwitchId s = 0; s < 16; ++s) {
    EXPECT_EQ(t.hosts_of_switch(s).size(), 4u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrregularProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(Irregular, DeterministicForSeed) {
  Rng a(99), b(99);
  const Topology ta = make_irregular(12, 2, 5, a);
  const Topology tb = make_irregular(12, 2, 5, b);
  ASSERT_EQ(ta.num_cables(), tb.num_cables());
  for (CableId c = 0; c < ta.num_cables(); ++c) {
    EXPECT_EQ(ta.cable(c).a.sw, tb.cable(c).a.sw);
    EXPECT_EQ(ta.cable(c).b.sw, tb.cable(c).b.sw);
  }
}

TEST(Irregular, RejectsPortOverflow) {
  Rng rng(1);
  EXPECT_THROW(make_irregular(4, 10, 8, rng, 16), std::invalid_argument);
}

}  // namespace
}  // namespace itb
