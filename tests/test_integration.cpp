// End-to-end properties across topologies, schemes, patterns and chunk
// sizes: conservation (everything injected is delivered after drain), flow
// control safety, forward progress under overload, and the paper's
// qualitative claims at small scale.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "harness/runner.hpp"
#include "harness/testbed.hpp"
#include "metrics/collector.hpp"
#include "metrics/link_util.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "topo/generators.hpp"
#include "traffic/generator.hpp"
#include "traffic/patterns.hpp"

namespace itb {
namespace {

Topology make_named(const std::string& name) {
  if (name == "torus4") return make_torus_2d(4, 4, 2);
  if (name == "express5") return make_torus_2d_express(5, 5, 2);
  if (name == "cplant") return make_cplant();
  if (name == "mesh33") return make_mesh_2d(3, 3, 2);
  Rng rng(1234);
  return make_irregular(10, 2, 5, rng);
}

class DrainProperty
    : public ::testing::TestWithParam<
          std::tuple<std::string, RoutingScheme, int>> {};

TEST_P(DrainProperty, EverythingInjectedIsDelivered) {
  const auto& [topo_name, scheme, chunk] = GetParam();
  Testbed tb(make_named(topo_name));
  Simulator sim;
  MyrinetParams params;
  params.chunk_flits = chunk;
  Network net(sim, tb.topo(), tb.routes(scheme), params, policy_of(scheme),
              99);
  UniformPattern pat(tb.topo().num_hosts());
  TrafficConfig tc;
  // Aggressive load to create real contention, scaled to the topology.
  tc.load_flits_per_ns_per_switch = 0.05;
  tc.payload_bytes = 512;
  tc.seed = 5;
  TrafficGenerator gen(sim, net, pat, tc);
  gen.start();
  sim.run_until(us(400));
  gen.stop();
  // Generous drain deadline; progress is also checked piecewise.
  std::uint64_t last_delivered = net.packets_delivered();
  for (int step = 0; step < 100 && net.packets_in_flight() > 0; ++step) {
    sim.run_until(sim.now() + us(200));
    if (net.packets_in_flight() == 0) break;
    ASSERT_GT(net.packets_delivered(), last_delivered)
        << "no forward progress: deadlock at step " << step;
    last_delivered = net.packets_delivered();
  }
  EXPECT_EQ(net.packets_in_flight(), 0u);
  EXPECT_EQ(net.packets_delivered(), net.packets_injected());
  EXPECT_EQ(net.flow_control_violations(), 0u);
  EXPECT_LE(net.max_buffer_occupancy(), params.slack_buffer_flits);
}

std::string drain_case_name(
    const ::testing::TestParamInfo<std::tuple<std::string, RoutingScheme, int>>&
        info) {
  std::string s = to_string(std::get<1>(info.param));
  for (auto& ch : s) {
    if (ch == '/' || ch == '-') ch = '_';
  }
  return std::get<0>(info.param) + "_" + s + "_c" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    TopologiesAndSchemes, DrainProperty,
    ::testing::Combine(::testing::Values("torus4", "express5", "mesh33",
                                         "irregular"),
                       ::testing::Values(RoutingScheme::kUpDown,
                                         RoutingScheme::kItbSp,
                                         RoutingScheme::kItbRr),
                       ::testing::Values(1, 8)),
    drain_case_name);

TEST(DrainCplant, AllSchemesDrain) {
  // CPLANT is the big irregular-ish topology; one combined run keeps the
  // suite fast while still covering it.
  for (const RoutingScheme scheme :
       {RoutingScheme::kUpDown, RoutingScheme::kItbRr}) {
    Testbed tb(make_cplant());
    Simulator sim;
    MyrinetParams params;
    Network net(sim, tb.topo(), tb.routes(scheme), params, policy_of(scheme));
    UniformPattern pat(tb.topo().num_hosts());
    TrafficConfig tc;
    tc.load_flits_per_ns_per_switch = 0.04;
    TrafficGenerator gen(sim, net, pat, tc);
    gen.start();
    sim.run_until(us(300));
    gen.stop();
    sim.run_until(sim.now() + ms(20));
    EXPECT_EQ(net.packets_in_flight(), 0u) << to_string(scheme);
    EXPECT_EQ(net.flow_control_violations(), 0u);
  }
}

class PatternDrain : public ::testing::TestWithParam<std::string> {};

TEST_P(PatternDrain, AllPatternsDrainOnTorusItbRr) {
  Testbed tb(make_torus_2d(4, 4, 4));
  Simulator sim;
  MyrinetParams params;
  Network net(sim, tb.topo(), tb.routes(RoutingScheme::kItbRr), params,
              PathPolicy::kRoundRobin);
  std::unique_ptr<DestinationPattern> pat;
  const std::string name = GetParam();
  if (name == "uniform") {
    pat = std::make_unique<UniformPattern>(tb.topo().num_hosts());
  } else if (name == "bitrev") {
    pat = std::make_unique<BitReversalPattern>(tb.topo().num_hosts());
  } else if (name == "hotspot") {
    pat = std::make_unique<HotspotPattern>(tb.topo().num_hosts(), 7, 0.1);
  } else {
    pat = std::make_unique<LocalPattern>(tb.topo(), 3);
  }
  TrafficConfig tc;
  tc.load_flits_per_ns_per_switch = 0.05;
  TrafficGenerator gen(sim, net, *pat, tc);
  gen.start();
  sim.run_until(us(400));
  gen.stop();
  sim.run_until(sim.now() + ms(20));
  EXPECT_EQ(net.packets_in_flight(), 0u);
  EXPECT_EQ(net.packets_delivered(), net.packets_injected());
  EXPECT_EQ(net.flow_control_violations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Patterns, PatternDrain,
                         ::testing::Values("uniform", "bitrev", "hotspot",
                                           "local"));

TEST(OverloadProgress, NoDeadlockFarPastSaturation) {
  // 3x the saturation load: queues grow but the network keeps delivering.
  Testbed tb(make_torus_2d(4, 4, 4));
  for (const RoutingScheme scheme :
       {RoutingScheme::kUpDown, RoutingScheme::kItbSp, RoutingScheme::kItbRr}) {
    Simulator sim;
    MyrinetParams params;
    Network net(sim, tb.topo(), tb.routes(scheme), params, policy_of(scheme));
    UniformPattern pat(tb.topo().num_hosts());
    TrafficConfig tc;
    tc.load_flits_per_ns_per_switch = 0.3;
    TrafficGenerator gen(sim, net, pat, tc);
    gen.start();
    std::uint64_t last = 0;
    for (int step = 1; step <= 6; ++step) {
      sim.run_until(us(200) * step);
      EXPECT_GT(net.packets_delivered(), last) << to_string(scheme);
      last = net.packets_delivered();
    }
    EXPECT_EQ(net.flow_control_violations(), 0u);
  }
}

TEST(RootCongestion, UpdownConcentratesItbBalances) {
  // The paper's Figure 8 claim at small scale: under uniform traffic near
  // UP/DOWN saturation, UP/DOWN loads links near the root far above the
  // rest, while ITB-RR keeps the spread tight.
  Testbed tb(make_torus_2d(8, 8, 8));
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.015;
  cfg.warmup = us(100);
  cfg.measure = us(300);
  cfg.collect_link_util = true;
  const RunResult ud = run_point(tb, RoutingScheme::kUpDown, pat, cfg);
  const RunResult rr = run_point(tb, RoutingScheme::kItbRr, pat, cfg);
  const auto s_ud = summarize_link_utilization(ud.link_util, tb.topo(), 0);
  const auto s_rr = summarize_link_utilization(rr.link_util, tb.topo(), 0);
  // UP/DOWN: hottest links are near the root and much hotter than
  // elsewhere.
  EXPECT_GT(s_ud.max_near_root, 0.30);
  EXPECT_GT(s_ud.max_near_root, 1.5 * s_ud.max_far_from_root);
  // ITB-RR: everything stays cool and flat (paper: all links < 12%).
  EXPECT_LT(s_rr.max_utilization, 0.25);
  EXPECT_LT(s_ud.fraction_below_10pct, 1.0);
  EXPECT_GT(s_ud.fraction_below_10pct, 0.35);
}

TEST(MessageSizes, QualitativelySimilarOrdering) {
  // §4.2: results for 32 and 1024-byte messages are qualitatively similar
  // to 512-byte ones.  Check ITB-RR accepts more than UP/DOWN at a load
  // past UP/DOWN saturation for all three sizes (small torus).
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  for (const int payload : {32, 512, 1024}) {
    RunConfig cfg;
    cfg.payload_bytes = payload;
    cfg.warmup = us(100);
    cfg.measure = us(300);
    // Short messages saturate earlier (routing latency dominates), so the
    // overload point is payload-dependent.
    cfg.load_flits_per_ns_per_switch = payload <= 32 ? 0.03 : 0.15;
    const RunResult ud = run_point(tb, RoutingScheme::kUpDown, pat, cfg);
    const RunResult rr = run_point(tb, RoutingScheme::kItbRr, pat, cfg);
    EXPECT_GT(rr.accepted, 0.95 * ud.accepted) << "payload " << payload;
    EXPECT_GT(rr.delivered, 100u);
  }
  // The quantitative ITB-beats-UP/DOWN claim for 512-byte messages is
  // asserted at the saturation point by Saturation.ItbBeatsUpdownOnSmallTorus
  // and at full scale by the bench binaries.
}

TEST(ItbUsage, MatchesStaticExpectation) {
  // Delivered-message ITB usage under uniform traffic approximates the
  // static per-pair average of the table (0.38 for the 8x8 torus with SP).
  Testbed tb(make_torus_2d(8, 8, 8));
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.01;
  cfg.warmup = us(100);
  cfg.measure = us(400);
  const RunResult sp = run_point(tb, RoutingScheme::kItbSp, pat, cfg);
  EXPECT_NEAR(sp.avg_itbs, 0.38, 0.10);
  // RR rotates over all alternatives, whose mean in-transit count is
  // higher (paper: 0.54 vs 0.43).
  const RunResult rr = run_point(tb, RoutingScheme::kItbRr, pat, cfg);
  EXPECT_GT(rr.avg_itbs, sp.avg_itbs);
}

TEST(AdaptiveExtension, AtLeastAsGoodAsSingle) {
  // Future-work policy sanity: adaptive selection should not collapse.
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig cfg;
  cfg.warmup = us(100);
  cfg.measure = us(300);
  cfg.load_flits_per_ns_per_switch = 0.06;
  const RunResult sp = run_point(tb, RoutingScheme::kItbSp, pat, cfg);
  const RunResult ad = run_point(tb, RoutingScheme::kItbAdapt, pat, cfg);
  EXPECT_GT(ad.accepted, 0.8 * sp.accepted);
}

}  // namespace
}  // namespace itb
