// Workspace-reuse determinism suite: the tentpole contract of the
// run-reuse layer is that a point run in a RESET workspace is bit-identical
// to the same point run in a freshly constructed one — same RNG draws, same
// (time, seq) event order, same metrics — in both engines, for every
// scheme, with checked mode on.  These tests pit run_point_in against
// explicit fresh/reused SimWorkspaces and assert exactly that, plus the
// arena layer's headline property: zero engine heap allocations once a
// workspace has warmed to the workload's high-water mark.
#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "sim/workspace.hpp"
#include "topo/generators.hpp"
#include "traffic/patterns.hpp"

namespace itb {
namespace {

RunConfig small_config(EngineKind engine) {
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.02;
  cfg.warmup = us(30);
  cfg.measure = us(80);
  cfg.engine = engine;
  cfg.checked = true;  // deep checks must survive reuse too
  cfg.collect_link_util = true;  // widest determinism surface
  return cfg;
}

/// Same point three ways: fresh workspace, reused-once workspace, and the
/// third run in that same workspace.  All three must agree bit-for-bit.
void expect_reuse_identical(const Testbed& tb, RoutingScheme scheme,
                            EngineKind engine) {
  UniformPattern pat(tb.topo().num_hosts());
  const RunConfig cfg = small_config(engine);

  SimWorkspace fresh;
  const RunResult a = run_point_in(fresh, tb, scheme, pat, cfg);

  SimWorkspace reused;
  const RunResult warm = run_point_in(reused, tb, scheme, pat, cfg);
  const RunResult b = run_point_in(reused, tb, scheme, pat, cfg);
  const RunResult c = run_point_in(reused, tb, scheme, pat, cfg);

  EXPECT_TRUE(same_simulated_metrics(a, warm));
  EXPECT_TRUE(same_simulated_metrics(a, b));
  EXPECT_TRUE(same_simulated_metrics(a, c));
  EXPECT_GT(a.delivered, 0u);
  EXPECT_EQ(a.invariant_violations, 0u);

  // Observability: reuse counts advance, and the fresh run is reuse zero.
  EXPECT_EQ(a.workspace_reuses, 0u);
  EXPECT_EQ(warm.workspace_reuses, 0u);
  EXPECT_EQ(b.workspace_reuses, 1u);
  EXPECT_EQ(c.workspace_reuses, 2u);
}

TEST(Workspace, ReuseBitIdenticalPodAllSchemes) {
  Testbed tb(make_torus_2d(4, 4, 4));
  for (const RoutingScheme s : {RoutingScheme::kUpDown, RoutingScheme::kItbSp,
                                RoutingScheme::kItbRr}) {
    SCOPED_TRACE(to_string(s));
    expect_reuse_identical(tb, s, EngineKind::kPod);
  }
}

TEST(Workspace, ReuseBitIdenticalLegacyAllSchemes) {
  Testbed tb(make_torus_2d(4, 4, 4));
  for (const RoutingScheme s : {RoutingScheme::kUpDown, RoutingScheme::kItbSp,
                                RoutingScheme::kItbRr}) {
    SCOPED_TRACE(to_string(s));
    expect_reuse_identical(tb, s, EngineKind::kLegacy);
  }
}

TEST(Workspace, SteadyStateRunsWithoutHeapAllocations) {
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  const RunConfig cfg = small_config(EngineKind::kPod);

  SimWorkspace ws;
  const RunResult first = run_point_in(ws, tb, RoutingScheme::kItbRr, pat, cfg);
  const RunResult second =
      run_point_in(ws, tb, RoutingScheme::kItbRr, pat, cfg);

  // The first run grows the arena/packet pool to the workload's high-water
  // mark; an identical second run must fit entirely in retained capacity.
  EXPECT_GT(first.heap_allocs_steady_state, 0u);
  EXPECT_EQ(second.heap_allocs_steady_state, 0u);
  EXPECT_EQ(first.arena_bytes_peak, second.arena_bytes_peak);
  EXPECT_TRUE(same_simulated_metrics(first, second));
}

TEST(Workspace, ReuseAcrossTopologies) {
  // One workspace, alternating testbeds: torus point, express-torus point,
  // then the torus point again.  Capacity reuse across differently shaped
  // networks must not leak any state between them.
  Testbed torus(make_torus_2d(4, 4, 4));
  Testbed express(make_torus_2d_express(5, 5, 4));
  UniformPattern torus_pat(torus.topo().num_hosts());
  UniformPattern express_pat(express.topo().num_hosts());
  const RunConfig cfg = small_config(EngineKind::kPod);

  SimWorkspace fresh_t, fresh_e;
  const RunResult t_ref =
      run_point_in(fresh_t, torus, RoutingScheme::kItbRr, torus_pat, cfg);
  const RunResult e_ref =
      run_point_in(fresh_e, express, RoutingScheme::kItbRr, express_pat, cfg);

  SimWorkspace ws;
  const RunResult t1 =
      run_point_in(ws, torus, RoutingScheme::kItbRr, torus_pat, cfg);
  const RunResult e1 =
      run_point_in(ws, express, RoutingScheme::kItbRr, express_pat, cfg);
  const RunResult t2 =
      run_point_in(ws, torus, RoutingScheme::kItbRr, torus_pat, cfg);

  EXPECT_TRUE(same_simulated_metrics(t_ref, t1));
  EXPECT_TRUE(same_simulated_metrics(e_ref, e1));
  EXPECT_TRUE(same_simulated_metrics(t_ref, t2));
}

TEST(Workspace, RunPointMatchesExplicitWorkspace) {
  // run_point (thread_local workspace) and run_point_in (explicit fresh
  // workspace) are the same primitive; their results must agree even after
  // the thread-local workspace has been reused by earlier calls.
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  const RunConfig cfg = small_config(EngineKind::kPod);

  const RunResult warmup = run_point(tb, RoutingScheme::kItbSp, pat, cfg);
  (void)warmup;
  const RunResult via_thread = run_point(tb, RoutingScheme::kItbSp, pat, cfg);
  SimWorkspace ws;
  const RunResult via_fresh =
      run_point_in(ws, tb, RoutingScheme::kItbSp, pat, cfg);
  EXPECT_TRUE(same_simulated_metrics(via_thread, via_fresh));
}

TEST(Workspace, EngineSwitchInsideOneWorkspace) {
  // prepare() may flip the engine between runs; each engine's results must
  // match that engine's fresh-workspace reference.
  Testbed tb(make_torus_2d(4, 4, 4));
  UniformPattern pat(tb.topo().num_hosts());
  const RunConfig pod_cfg = small_config(EngineKind::kPod);
  const RunConfig legacy_cfg = small_config(EngineKind::kLegacy);

  SimWorkspace fresh_pod, fresh_legacy;
  const RunResult pod_ref =
      run_point_in(fresh_pod, tb, RoutingScheme::kItbRr, pat, pod_cfg);
  const RunResult legacy_ref =
      run_point_in(fresh_legacy, tb, RoutingScheme::kItbRr, pat, legacy_cfg);

  SimWorkspace ws;
  const RunResult pod1 =
      run_point_in(ws, tb, RoutingScheme::kItbRr, pat, pod_cfg);
  const RunResult legacy1 =
      run_point_in(ws, tb, RoutingScheme::kItbRr, pat, legacy_cfg);
  const RunResult pod2 =
      run_point_in(ws, tb, RoutingScheme::kItbRr, pat, pod_cfg);

  EXPECT_TRUE(same_simulated_metrics(pod_ref, pod1));
  EXPECT_TRUE(same_simulated_metrics(legacy_ref, legacy1));
  EXPECT_TRUE(same_simulated_metrics(pod_ref, pod2));
}

}  // namespace
}  // namespace itb
