// Route-table export and the simple_routes balancing objectives.
#include <gtest/gtest.h>

#include <sstream>

#include "core/route_builder.hpp"
#include "core/route_io.hpp"
#include "route/simple_routes.hpp"
#include "topo/generators.hpp"

namespace itb {
namespace {

TEST(RouteIo, FormatRouteShowsLegsAndItbs) {
  // The 5-switch ITB fixture: pair (3, 2) has one in-transit host.
  Topology t(5, 8, "fx");
  t.connect_auto(0, 1);
  t.connect_auto(0, 2);
  t.connect_auto(1, 3);
  t.connect_auto(2, 4);
  t.connect_auto(3, 4);
  for (SwitchId s = 0; s < 5; ++s) t.attach_hosts(s, 2);
  UpDown ud(t, 0);
  RouteSet rs = build_itb_routes(t, ud);
  const std::string line = format_route(t, rs.alternatives(3, 2)[0]);
  EXPECT_NE(line.find("s3->s2"), std::string::npos);
  EXPECT_NE(line.find("itbs=1"), std::string::npos);
  EXPECT_NE(line.find("@h"), std::string::npos);
  EXPECT_NE(line.find("via 3-4-2"), std::string::npos);
  EXPECT_NE(line.find(" | "), std::string::npos) << "two legs -> separator";
}

TEST(RouteIo, DumpFiltersByItbCount) {
  Topology t = make_torus_2d(4, 4, 1);
  UpDown ud(t, 0);
  RouteSet rs = build_itb_routes(t, ud);
  std::ostringstream all, only_itb;
  dump_routes(all, t, rs, 0);
  dump_routes(only_itb, t, rs, 1);
  EXPECT_GT(all.str().size(), only_itb.str().size());
  // Every line of the filtered dump names at least one in-transit host.
  std::istringstream is(only_itb.str());
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) {
    // Filtering is on alternative 0; alternatives of a kept pair may
    // themselves be legal (no '@h'), but the header alt0 line must have it.
    if (line.rfind("alt0 ", 0) == 0) {
      EXPECT_NE(line.find("@h"), std::string::npos) << line;
    }
    ++lines;
  }
  EXPECT_GT(lines, 0);
}

TEST(RouteIo, SummaryCountsRoutes) {
  Topology t = make_torus_2d(4, 4, 1);
  UpDown ud(t, 0);
  RouteSet rs = build_itb_routes(t, ud);
  const std::string s = summarize_route_set(t, rs);
  EXPECT_NE(s.find("240 pairs"), std::string::npos);  // 16*15
  EXPECT_NE(s.find("itbs 0/1/2/3+"), std::string::npos);
}

TEST(SimpleRoutesObjective, BothObjectivesProduceLegalTables) {
  Topology t = make_torus_2d(4, 4, 1);
  UpDown ud(t, 0);
  for (const BalanceObjective obj :
       {BalanceObjective::kMinMax, BalanceObjective::kMinSum}) {
    SimpleRoutesOptions o;
    o.objective = obj;
    SimpleRoutes sr(t, ud, o);
    for (SwitchId s = 0; s < 16; ++s) {
      for (SwitchId d = 0; d < 16; ++d) {
        EXPECT_TRUE(ud.legal(sr.route(s, d)));
      }
    }
  }
}

TEST(SimpleRoutesObjective, MinMaxHasNoHotterPeakThanMinSum) {
  Topology t = make_torus_2d(8, 8, 1);
  UpDown ud(t, 0);
  auto max_weight = [&](BalanceObjective obj) {
    SimpleRoutesOptions o;
    o.objective = obj;
    SimpleRoutes sr(t, ud, o);
    int best = 0;
    for (const int w : sr.channel_weights()) best = std::max(best, w);
    return best;
  };
  EXPECT_LE(max_weight(BalanceObjective::kMinMax),
            max_weight(BalanceObjective::kMinSum));
}

}  // namespace
}  // namespace itb
