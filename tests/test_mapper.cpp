// Topology discovery (the Myrinet mapper), map diffing and the
// route-manager control loop.
#include <gtest/gtest.h>

#include <algorithm>

#include "mapper/mapper.hpp"
#include "mapper/route_manager.hpp"
#include "sim/rng.hpp"
#include "topo/generators.hpp"

namespace itb {
namespace {

// Isomorphism check via signatures: the discovered map must reproduce the
// physical network exactly once the signature correspondence is applied.
void expect_isomorphic(const Topology& real, const TopologyProber& prober,
                       const NetworkMap& map) {
  ASSERT_EQ(map.topo.num_switches(), real.num_switches());
  ASSERT_EQ(map.topo.num_hosts(), real.num_hosts());
  ASSERT_EQ(map.topo.num_cables(), real.num_cables());
  EXPECT_TRUE(map.topo.validate().empty());

  // Build correspondence: discovered switch -> real switch.
  std::vector<SwitchId> to_real(static_cast<std::size_t>(map.topo.num_switches()),
                                kNoSwitch);
  for (SwitchId s = 0; s < map.topo.num_switches(); ++s) {
    bool found = false;
    for (SwitchId r = 0; r < real.num_switches(); ++r) {
      if (prober.switch_signature(r) ==
          map.switch_sig[static_cast<std::size_t>(s)]) {
        to_real[static_cast<std::size_t>(s)] = r;
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << "discovered switch with unknown signature";
  }
  // No duplicates.
  auto sorted = to_real;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());

  // Port-exact wiring: every discovered port maps to the same peer kind
  // and, through the correspondence, the same peer switch/port.
  for (SwitchId s = 0; s < map.topo.num_switches(); ++s) {
    const SwitchId r = to_real[static_cast<std::size_t>(s)];
    for (PortId p = 0; p < map.topo.ports_per_switch(); ++p) {
      const PortPeer& dp = map.topo.peer(s, p);
      const PortPeer& rp = real.peer(r, p);
      ASSERT_EQ(dp.kind, rp.kind) << "switch " << s << " port " << p;
      if (dp.kind == PeerKind::kSwitch) {
        EXPECT_EQ(to_real[static_cast<std::size_t>(dp.sw)], rp.sw);
        EXPECT_EQ(dp.port, rp.port);
      } else if (dp.kind == PeerKind::kHost) {
        EXPECT_EQ(map.host_sig[static_cast<std::size_t>(dp.host)],
                  prober.host_signature(rp.host));
      }
    }
  }
}

TEST(Prober, LocalAndOneHopProbes) {
  const Topology t = make_mesh_2d(1, 2, 2);
  TopologyProber prober(t, /*origin=*/0);
  const ProbeResult local = prober.probe({});
  EXPECT_EQ(local.target, ProbeTarget::kSwitch);
  EXPECT_EQ(local.signature, prober.switch_signature(0));
  EXPECT_EQ(local.num_ports, t.ports_per_switch());

  // Port 0 of switch 0 leads to switch 1 (fabric cable created first).
  const ProbeResult hop = prober.probe({PortId{0}});
  EXPECT_EQ(hop.target, ProbeTarget::kSwitch);
  EXPECT_EQ(hop.signature, prober.switch_signature(1));
  EXPECT_EQ(hop.entry_port, 0);

  // The origin's own access port reports the origin host.
  const ProbeResult self = prober.probe({t.host(0).port});
  EXPECT_EQ(self.target, ProbeTarget::kHost);
  EXPECT_EQ(self.signature, prober.host_signature(0));

  // An unplugged port reports nothing.
  const PortId free_port = t.first_free_port(0);
  ASSERT_NE(free_port, kNoPort);
  EXPECT_EQ(prober.probe({free_port}).target, ProbeTarget::kNothing);
  EXPECT_GE(prober.probes_sent(), 4u);
}

TEST(Prober, HostMidRouteConsumesProbe) {
  const Topology t = make_mesh_2d(1, 2, 2);
  TopologyProber prober(t, 0);
  // First hop into a host, second hop impossible.
  const ProbeResult r = prober.probe({t.host(0).port, PortId{0}});
  EXPECT_EQ(r.target, ProbeTarget::kNothing);
}

TEST(Prober, FailedCableBlocksProbes) {
  const Topology t = make_mesh_2d(1, 3, 1);
  TopologyProber prober(t, 0);
  // Kill the cable between switches 1 and 2.
  const PortPeer& peer = t.peer(1, t.switch_ports_of(1)[1]);
  prober.fail_cable(peer.cable);
  // Route 0 -> 1 still works; 0 -> 1 -> 2 does not.
  EXPECT_EQ(prober.probe({PortId{0}}).target, ProbeTarget::kSwitch);
  EXPECT_EQ(prober.probe({PortId{0}, t.switch_ports_of(1)[1]}).target,
            ProbeTarget::kNothing);
  prober.restore_cable(peer.cable);
  EXPECT_EQ(prober.probe({PortId{0}, t.switch_ports_of(1)[1]}).target,
            ProbeTarget::kSwitch);
}

TEST(Mapper, DiscoversTorusExactly) {
  const Topology real = make_torus_2d(4, 4, 2);
  TopologyProber prober(real, 5);
  const NetworkMap map = map_network(prober, prober.host_signature(5));
  expect_isomorphic(real, prober, map);
  EXPECT_EQ(map.origin, map.host_by_signature(prober.host_signature(5)));
  EXPECT_GT(map.probes_used, 0u);
}

TEST(Mapper, DiscoversCplant) {
  const Topology real = make_cplant();
  TopologyProber prober(real, 123);
  const NetworkMap map = map_network(prober, prober.host_signature(123));
  expect_isomorphic(real, prober, map);
}

class MapperRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MapperRandom, DiscoversRandomIrregular) {
  Rng rng(GetParam());
  const Topology real = make_irregular(12, 2, 5, rng);
  const auto origin = static_cast<HostId>(GetParam() % 24);
  TopologyProber prober(real, origin);
  const NetworkMap map = map_network(prober, prober.host_signature(origin));
  expect_isomorphic(real, prober, map);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperRandom,
                         ::testing::Range<std::uint64_t>(300, 310));

TEST(Mapper, OriginNumberingIsStable) {
  const Topology real = make_torus_2d(4, 4, 2);
  TopologyProber prober(real, 3);
  const NetworkMap a = map_network(prober, prober.host_signature(3));
  const NetworkMap b = map_network(prober, prober.host_signature(3));
  EXPECT_EQ(a.switch_sig, b.switch_sig);
  EXPECT_EQ(a.host_sig, b.host_sig);
}

TEST(Mapper, DeadAccessCableThrows) {
  const Topology real = make_mesh_2d(1, 2, 1);
  TopologyProber prober(real, 0);
  prober.fail_cable(real.host(0).cable);
  EXPECT_THROW(map_network(prober, prober.host_signature(0)),
               std::runtime_error);
}

TEST(MapDiff, DetectsFailedFabricCable) {
  // Use a topology with a redundant cable so failure keeps it connected.
  const Topology real = make_torus_2d(4, 4, 1);
  TopologyProber prober(real, 0);
  const NetworkMap before = map_network(prober, prober.host_signature(0));

  const PortPeer& peer = real.peer(5, real.switch_ports_of(5)[0]);
  prober.fail_cable(peer.cable);
  const NetworkMap after = map_network(prober, prober.host_signature(0));

  const MapDiff d = diff_maps(before, after);
  EXPECT_TRUE(d.switches_removed.empty());
  EXPECT_TRUE(d.hosts_removed.empty());
  EXPECT_EQ(d.cables_removed.size(), 1u);
  EXPECT_TRUE(d.cables_added.empty());
  EXPECT_FALSE(d.empty());
  // And the reverse diff sees it as an addition.
  const MapDiff r = diff_maps(after, before);
  EXPECT_EQ(r.cables_added.size(), 1u);
}

TEST(MapDiff, DetectsLostSubtree) {
  // Killing a host's access cable removes exactly that host.
  const Topology real = make_torus_2d(4, 4, 2);
  TopologyProber prober(real, 0);
  const NetworkMap before = map_network(prober, prober.host_signature(0));
  prober.fail_cable(real.host(9).cable);
  const NetworkMap after = map_network(prober, prober.host_signature(0));
  const MapDiff d = diff_maps(before, after);
  ASSERT_EQ(d.hosts_removed.size(), 1u);
  EXPECT_EQ(d.hosts_removed[0], prober.host_signature(9));
  EXPECT_TRUE(d.switches_removed.empty());
}

TEST(MapDiff, IdenticalMapsAreEmpty) {
  const Topology real = make_mesh_2d(2, 2, 1);
  TopologyProber prober(real, 0);
  const NetworkMap a = map_network(prober, prober.host_signature(0));
  const NetworkMap b = map_network(prober, prober.host_signature(0));
  EXPECT_TRUE(diff_maps(a, b).empty());
}

TEST(RouteManager, BuildsAndCachesRoutes) {
  const Topology real = make_torus_2d(4, 4, 2);
  TopologyProber prober(real, 0);
  RouteManager mgr(prober, prober.host_signature(0));
  const RouteSet& itb1 = mgr.itb_routes();
  const RouteSet& itb2 = mgr.itb_routes();
  EXPECT_EQ(&itb1, &itb2);
  EXPECT_EQ(mgr.rebuilds(), 0);
  // No change -> no rebuild.
  EXPECT_TRUE(mgr.refresh().empty());
  EXPECT_EQ(mgr.rebuilds(), 0);
  EXPECT_EQ(&mgr.itb_routes(), &itb1);
}

TEST(RouteManager, FailureTriggersRebuildAndAvoidsDeadCable) {
  const Topology real = make_torus_2d(4, 4, 2);
  TopologyProber prober(real, 0);
  RouteManager mgr(prober, prober.host_signature(0));
  (void)mgr.updown_routes();

  // Fail one fabric cable; the torus stays connected.
  const PortPeer& peer = real.peer(0, real.switch_ports_of(0)[0]);
  prober.fail_cable(peer.cable);
  const MapDiff d = mgr.refresh();
  EXPECT_EQ(d.cables_removed.size(), 1u);
  EXPECT_EQ(mgr.rebuilds(), 1);

  // New tables exist, cover every pair of the surviving topology, and are
  // all legal (spot-check through the new UpDown).
  const Topology& topo = mgr.map().topo;
  const RouteSet& routes = mgr.updown_routes();
  for (SwitchId s = 0; s < topo.num_switches(); ++s) {
    for (SwitchId dd = 0; dd < topo.num_switches(); ++dd) {
      EXPECT_FALSE(routes.alternatives(s, dd).empty());
    }
  }
}

}  // namespace
}  // namespace itb
