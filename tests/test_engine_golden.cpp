// Golden cross-engine determinism: the POD calendar-queue engine must
// reproduce the legacy std::function engine bit-for-bit.
//
// The engines share one ordering contract — events fire by (time, seq),
// equal timestamps FIFO in push order — and the network pushes each POD
// event at the exact moment it would have pushed the legacy closure, so
// every simulated quantity (delivery stream, latencies, spills, buffer
// peaks) is identical.  Delivery tail-burst coalescing only elides events
// that nothing observes, so it holds with coalescing on or off; with it
// off the executed-event *counts* match exactly as well.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/json.hpp"
#include "harness/runner.hpp"
#include "harness/testbed.hpp"
#include "metrics/collector.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "topo/generators.hpp"
#include "traffic/generator.hpp"
#include "traffic/patterns.hpp"

namespace itb {
namespace {

bool operator==(const DeliveryRecord& a, const DeliveryRecord& b) {
  return a.src == b.src && a.dst == b.dst &&
         a.payload_flits == b.payload_flits && a.gen_time == b.gen_time &&
         a.inject_time == b.inject_time && a.deliver_time == b.deliver_time &&
         a.itbs_used == b.itbs_used && a.alt_index == b.alt_index &&
         a.total_switch_hops == b.total_switch_hops && a.spilled == b.spilled;
}

struct EngineRun {
  std::vector<DeliveryRecord> deliveries;
  std::uint64_t events = 0;
  std::uint64_t events_coalesced = 0;
  std::uint64_t fc_violations = 0;
  std::uint64_t spills = 0;
  int max_occupancy = 0;
  TimePs end_time = 0;
};

/// One fig.7-style point (4x4 torus, 2 hosts/switch) driven directly so the
/// full delivery stream can be captured, not just aggregate metrics.
EngineRun run_engine(EngineKind engine, RoutingScheme scheme, double load,
                     bool coalesce, const Testbed& tb) {
  Simulator sim(engine);
  MyrinetParams params;
  params.coalesce_chunk_flow = coalesce;
  Network net(sim, tb.topo(), tb.routes(scheme), params, policy_of(scheme),
              42 ^ 0x9e37u);
  EngineRun out;
  net.set_delivery_callback(
      [&out](const DeliveryRecord& r) { out.deliveries.push_back(r); });

  TrafficConfig tcfg;
  tcfg.load_flits_per_ns_per_switch = load;
  tcfg.payload_bytes = 512;
  tcfg.seed = 42;
  UniformPattern pat(tb.topo().num_hosts());
  TrafficGenerator gen(sim, net, pat, tcfg);
  gen.start();
  sim.run_until(us(300));
  gen.stop();

  out.events = sim.events_executed();
  out.events_coalesced = net.chunk_events_coalesced();
  out.fc_violations = net.flow_control_violations();
  out.spills = net.itb_spills();
  out.max_occupancy = net.max_buffer_occupancy();
  out.end_time = sim.now();
  return out;
}

void expect_same_stream(const EngineRun& legacy, const EngineRun& pod) {
  EXPECT_EQ(legacy.fc_violations, 0u);
  EXPECT_EQ(pod.fc_violations, 0u);
  EXPECT_EQ(legacy.spills, pod.spills);
  EXPECT_EQ(legacy.max_occupancy, pod.max_occupancy);
  EXPECT_EQ(legacy.end_time, pod.end_time);
  ASSERT_EQ(legacy.deliveries.size(), pod.deliveries.size());
  for (std::size_t i = 0; i < legacy.deliveries.size(); ++i) {
    ASSERT_TRUE(legacy.deliveries[i] == pod.deliveries[i])
        << "delivery stream diverges at record " << i;
  }
}

TEST(EngineGolden, MidLoadDeliveryStreamIdentical) {
  Testbed tb(make_torus_2d(4, 4, 2));
  for (const RoutingScheme scheme :
       {RoutingScheme::kUpDown, RoutingScheme::kItbRr}) {
    const EngineRun legacy =
        run_engine(EngineKind::kLegacy, scheme, 0.02, true, tb);
    const EngineRun pod = run_engine(EngineKind::kPod, scheme, 0.02, true, tb);
    SCOPED_TRACE(to_string(scheme));
    expect_same_stream(legacy, pod);
    EXPECT_GT(legacy.deliveries.size(), 100u) << "point should carry traffic";
    // Coalescing really elides events, and only events: every elided chunk
    // arrival is accounted, so the legacy count is bracketed by the POD
    // count and the POD count plus elisions (arrivals pending at the
    // deadline make the upper bound an inequality).
    EXPECT_GT(pod.events_coalesced, 0u);
    EXPECT_LT(pod.events, legacy.events);
    EXPECT_LE(legacy.events, pod.events + pod.events_coalesced);
  }
}

TEST(EngineGolden, CoalescingOffMatchesEventForEvent) {
  Testbed tb(make_torus_2d(4, 4, 2));
  const EngineRun legacy =
      run_engine(EngineKind::kLegacy, RoutingScheme::kItbRr, 0.02, false, tb);
  const EngineRun pod =
      run_engine(EngineKind::kPod, RoutingScheme::kItbRr, 0.02, false, tb);
  expect_same_stream(legacy, pod);
  EXPECT_EQ(pod.events_coalesced, 0u);
  EXPECT_EQ(legacy.events, pod.events)
      << "without coalescing the engines must execute identical schedules";
}

TEST(EngineGolden, HighLoadWithItbsStillIdentical) {
  // Push into congestion so ITB ejection/re-injection, stop&go flow control
  // and output arbitration all fire; bit-reversal stresses the up/down
  // detour paths that create in-transit hops.
  Testbed tb(make_torus_2d(4, 4, 2));
  BitReversalPattern pat(tb.topo().num_hosts());
  auto run = [&](EngineKind engine) {
    Simulator sim(engine);
    Network net(sim, tb.topo(), tb.routes(RoutingScheme::kItbRr),
                MyrinetParams{}, PathPolicy::kRoundRobin, 42 ^ 0x9e37u);
    EngineRun out;
    net.set_delivery_callback(
        [&out](const DeliveryRecord& r) { out.deliveries.push_back(r); });
    TrafficConfig tcfg;
    tcfg.load_flits_per_ns_per_switch = 0.08;
    tcfg.payload_bytes = 512;
    tcfg.seed = 7;
    TrafficGenerator gen(sim, net, pat, tcfg);
    gen.start();
    sim.run_until(us(300));
    gen.stop();
    out.events = sim.events_executed();
    out.events_coalesced = net.chunk_events_coalesced();
    out.fc_violations = net.flow_control_violations();
    out.spills = net.itb_spills();
    out.max_occupancy = net.max_buffer_occupancy();
    out.end_time = sim.now();
    return out;
  };
  const EngineRun legacy = run(EngineKind::kLegacy);
  const EngineRun pod = run(EngineKind::kPod);
  expect_same_stream(legacy, pod);
  std::uint64_t itb_hops = 0;
  for (const DeliveryRecord& r : legacy.deliveries) {
    itb_hops += static_cast<std::uint64_t>(r.itbs_used);
  }
  EXPECT_GT(itb_hops, 0u) << "point should exercise the ITB mechanism";
}

/// RunResult comparison for cross-engine runs: every simulated metric must
/// match; executed-event counts and queue peaks legitimately differ (that
/// is the point of coalescing), wall-clock always differs.
void expect_same_metrics(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.avg_latency_ns, b.avg_latency_ns);
  EXPECT_EQ(a.avg_latency_gen_ns, b.avg_latency_gen_ns);
  EXPECT_EQ(a.p50_latency_ns, b.p50_latency_ns);
  EXPECT_EQ(a.p99_latency_ns, b.p99_latency_ns);
  EXPECT_EQ(a.latency_ci95_ns, b.latency_ci95_ns);
  EXPECT_EQ(a.avg_itbs, b.avg_itbs);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.spills, b.spills);
  EXPECT_EQ(a.fc_violations, 0u);
  EXPECT_EQ(b.fc_violations, 0u);
  EXPECT_EQ(a.max_buffer_occupancy, b.max_buffer_occupancy);
  EXPECT_EQ(a.saturated, b.saturated);
  ASSERT_EQ(a.link_util.size(), b.link_util.size());
  for (std::size_t i = 0; i < a.link_util.size(); ++i) {
    EXPECT_EQ(a.link_util[i].utilization, b.link_util[i].utilization);
    EXPECT_EQ(a.link_util[i].stopped_fraction,
              b.link_util[i].stopped_fraction);
  }
}

// ---------------------------------------------------------------------------
// Golden fixtures: committed canonical-JSON snapshots of one small cell from
// each experiment family (fig. 7 uniform, fig. 10 bit-reversal, fig. 12
// local traffic).  Any engine change that alters a simulated quantity —
// a latency, a delivery count, an event total — shows up as a fixture diff
// that must be reviewed and regenerated deliberately:
//
//   ITB_UPDATE_GOLDEN=1 ctest -R GoldenFixture
//
// The config pins everything build-dependent: the POD engine explicitly
// (not kDefaultEngine, which ITB_LEGACY_EVENTS flips) and checked=false
// explicitly (not the ITB_CHECKED-dependent default — watchdog sampling
// adds events), so every build produces the identical canonical string.

RunResult run_golden_cell(const Testbed& tb, const DestinationPattern& pat,
                          RoutingScheme scheme) {
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.02;
  cfg.payload_bytes = 512;
  cfg.warmup = us(50);
  cfg.measure = us(150);
  cfg.seed = 42;
  cfg.engine = EngineKind::kPod;
  cfg.checked = false;
  return run_point(tb, scheme, pat, cfg);
}

void compare_or_update_golden(const char* name, const RunResult& r) {
  const std::string path = std::string(ITB_GOLDEN_DIR) + "/" + name;
  const std::string got = run_result_to_canonical_json(r) + "\n";
  if (std::getenv("ITB_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path
                         << " missing; regenerate with ITB_UPDATE_GOLDEN=1";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "simulated results changed; if intended, regenerate " << name
      << " with ITB_UPDATE_GOLDEN=1 and review the diff";
}

TEST(GoldenFixture, Fig7UniformCell) {
  Testbed tb(make_torus_2d(4, 4, 2));
  UniformPattern pat(tb.topo().num_hosts());
  const RunResult r = run_golden_cell(tb, pat, RoutingScheme::kItbSp);
  ASSERT_GT(r.delivered, 0u);
  ASSERT_EQ(r.invariant_violations, 0u);
  compare_or_update_golden("fig7_cell.json", r);
}

TEST(GoldenFixture, Fig10BitReversalCell) {
  Testbed tb(make_torus_2d(4, 4, 2));
  BitReversalPattern pat(tb.topo().num_hosts());
  const RunResult r = run_golden_cell(tb, pat, RoutingScheme::kItbRr);
  ASSERT_GT(r.delivered, 0u);
  ASSERT_EQ(r.invariant_violations, 0u);
  compare_or_update_golden("fig10_cell.json", r);
}

TEST(GoldenFixture, Fig12LocalCell) {
  Testbed tb(make_torus_2d(4, 4, 2));
  LocalPattern pat(tb.topo(), 3);
  const RunResult r = run_golden_cell(tb, pat, RoutingScheme::kUpDown);
  ASSERT_GT(r.delivered, 0u);
  ASSERT_EQ(r.invariant_violations, 0u);
  compare_or_update_golden("fig12_cell.json", r);
}

TEST(GoldenFixture, CanonicalJsonIsDeterministicAcrossRepeats) {
  // The fixture representation itself must be bit-stable: same config, two
  // fresh runs, identical canonical strings (wall-clock fields excluded).
  Testbed tb(make_torus_2d(4, 4, 2));
  UniformPattern pat(tb.topo().num_hosts());
  const RunResult a = run_golden_cell(tb, pat, RoutingScheme::kItbSp);
  const RunResult b = run_golden_cell(tb, pat, RoutingScheme::kItbSp);
  EXPECT_EQ(run_result_to_canonical_json(a), run_result_to_canonical_json(b));
  EXPECT_TRUE(same_simulated_metrics(a, b));
}

TEST(EngineGolden, RunPointMatchesAcrossEngines) {
  Testbed tb(make_torus_2d(4, 4, 2));
  UniformPattern pat(tb.topo().num_hosts());
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.02;
  cfg.warmup = us(50);
  cfg.measure = us(150);
  cfg.collect_link_util = true;
  cfg.engine = EngineKind::kLegacy;
  const RunResult legacy = run_point(tb, RoutingScheme::kItbRr, pat, cfg);
  cfg.engine = EngineKind::kPod;
  const RunResult pod = run_point(tb, RoutingScheme::kItbRr, pat, cfg);
  expect_same_metrics(legacy, pod);
  EXPECT_GT(pod.events_coalesced, 0u);
  EXPECT_LE(pod.peak_event_queue_len, legacy.peak_event_queue_len);
}

}  // namespace
}  // namespace itb
