// The in-transit buffer NIC pipeline: exact re-injection timing, reception
// overlap, pool accounting, host-memory spill, and injection priority.
#include <gtest/gtest.h>

#include <vector>

#include "core/route_builder.hpp"
#include "net/network.hpp"
#include "route/simple_routes.hpp"
#include "sim/simulator.hpp"
#include "topo/generators.hpp"

namespace itb {
namespace {

constexpr TimePs F = 6250;
constexpr TimePs W = 49200;
constexpr TimePs R = 150000;
constexpr TimePs D = 275000 + 200000;  // detect + DMA program

// Five-switch network whose pair (3 -> 4) has a unique minimal path that
// violates up*/down* and therefore needs exactly one in-transit buffer:
//
//        0 (root)
//       / \ .
//      1   2        levels 1
//      |   |
//      3---4        levels 2; cable 3-4 oriented up-end = 3
//
// Minimal 3->2 is 3-4-2?  We use pair (3 -> 2): the only 2-hop path is
// 3-4, 4-2: "down" (3->4, since up end is 3) then "up" (4->2) — illegal,
// split at switch 4.  The legal alternative 3-1-0-2 has 3 hops, so the
// minimal path is unique and the ITB table must use the split route.
Topology itb_fixture() {
  Topology t(5, 8, "itb-fixture");
  t.connect_auto(0, 1);
  t.connect_auto(0, 2);
  t.connect_auto(1, 3);
  t.connect_auto(2, 4);
  t.connect_auto(3, 4);
  for (SwitchId s = 0; s < 5; ++s) t.attach_hosts(s, 2);
  return t;
}

struct Capture {
  std::vector<DeliveryRecord> records;
  void attach(Network& net) {
    net.set_delivery_callback(
        [this](const DeliveryRecord& r) { records.push_back(r); });
  }
};

// Host ids in the fixture: switch s owns hosts {2s, 2s+1}.
constexpr HostId kSrc = 6;   // switch 3
constexpr HostId kDst = 4;   // switch 2

TEST(ItbFixture, RouteHasExactlyOneItbAtSwitch4) {
  Topology t = itb_fixture();
  UpDown ud(t, 0);
  EXPECT_EQ(ud.level(4), 2);
  EXPECT_EQ(ud.up_end(t.peer(3, t.switch_ports_of(3)[1]).cable), 3);
  const RouteSet rs = build_itb_routes(t, ud);
  const auto& alts = rs.alternatives(3, 2);
  ASSERT_EQ(alts.size(), 1u);
  EXPECT_EQ(alts[0].num_itbs(), 1);
  EXPECT_EQ(alts[0].total_switch_hops, 2);
  ASSERT_EQ(alts[0].legs.size(), 2u);
  const HostId itb_host = alts[0].legs[0].end_host;
  EXPECT_EQ(t.host(itb_host).sw, 4);
}

TEST(ItbTiming, OneItbZeroLoadExact) {
  MyrinetParams p;
  p.chunk_flits = 1;
  Topology topo = itb_fixture();
  UpDown ud(topo, 0);
  RouteSet routes = build_itb_routes(topo, ud);
  Simulator sim;
  Network net(sim, topo, routes, p, PathPolicy::kSingle);
  Capture cap;
  cap.attach(net);
  net.inject(kSrc, kDst, 512);
  sim.run_until(ms(2));
  ASSERT_EQ(cap.records.size(), 1u);
  const auto& rec = cap.records[0];
  EXPECT_EQ(rec.itbs_used, 1);
  // Leg 0 crosses 1 cable (3->4) then ejects; leg 1 crosses 1 cable
  // (4->2) and delivers:
  //   header at ITB NIC:  (k0+2)(F+W) + (k0+1)R      with k0 = 1
  //   ready to re-inject: + D
  //   delivery:           + (k1+2)(F+W) + (k1+1)R + P*F   with k1 = 1
  const TimePs want = 3 * (F + W) + 2 * R + D + 3 * (F + W) + 2 * R + 512 * F;
  EXPECT_EQ(rec.deliver_time - rec.inject_time, want);
  EXPECT_FALSE(rec.spilled);
  EXPECT_EQ(net.itb_spills(), 0u);
}

TEST(ItbTiming, ReinjectionOverlapsReception) {
  // Total latency must be far below store-and-forward at the ITB host
  // (which would add a full P*F = 3.2 us): the re-injection starts D after
  // the header arrives, not after the tail.
  MyrinetParams p;
  p.chunk_flits = 1;
  Topology topo = itb_fixture();
  UpDown ud(topo, 0);
  RouteSet routes = build_itb_routes(topo, ud);
  Simulator sim;
  Network net(sim, topo, routes, p, PathPolicy::kSingle);
  Capture cap;
  cap.attach(net);
  net.inject(kSrc, kDst, 512);
  sim.run_until(ms(2));
  ASSERT_EQ(cap.records.size(), 1u);
  const TimePs lat = cap.records[0].deliver_time - cap.records[0].inject_time;
  // Store-and-forward bound: both legs full streams = 2 * P*F + overheads.
  EXPECT_LT(lat, 2 * 512 * F);
  // And the ITB overhead vs a hypothetical straight minimal path is about
  // D + one extra (F+W) pair + R (NIC hop), well under 1 us.
  const TimePs straight = 4 * (F + W) + 3 * R + 512 * F;
  EXPECT_LT(lat - straight, us(1));
}

TEST(ItbPool, ReservationsAccountedAndReleased) {
  MyrinetParams p;
  p.chunk_flits = 8;
  Topology topo = itb_fixture();
  UpDown ud(topo, 0);
  RouteSet routes = build_itb_routes(topo, ud);
  Simulator sim;
  Network net(sim, topo, routes, p, PathPolicy::kSingle);
  Capture cap;
  cap.attach(net);
  for (int i = 0; i < 10; ++i) net.inject(kSrc, kDst, 512);
  sim.run_until(ms(5));
  EXPECT_EQ(cap.records.size(), 10u);
  EXPECT_EQ(net.itb_spills(), 0u);
  EXPECT_EQ(net.packets_in_flight(), 0u);
  for (const auto& r : cap.records) EXPECT_EQ(r.itbs_used, 1);
}

TEST(ItbPool, ExhaustionSpillsToHostMemoryWithPenalty) {
  MyrinetParams p;
  p.chunk_flits = 1;
  p.itb_pool_bytes = 100;  // smaller than one packet -> every visit spills
  Topology topo = itb_fixture();
  UpDown ud(topo, 0);
  RouteSet routes = build_itb_routes(topo, ud);
  Simulator sim;
  Network net(sim, topo, routes, p, PathPolicy::kSingle);
  Capture cap;
  cap.attach(net);
  net.inject(kSrc, kDst, 512);
  sim.run_until(ms(5));
  ASSERT_EQ(cap.records.size(), 1u);
  EXPECT_TRUE(cap.records[0].spilled);
  EXPECT_EQ(net.itb_spills(), 1u);
  const TimePs base = 3 * (F + W) + 2 * R + D + 3 * (F + W) + 2 * R + 512 * F;
  EXPECT_EQ(cap.records[0].deliver_time - cap.records[0].inject_time,
            base + p.host_memory_penalty);
}

TEST(ItbPool, LargePacketsEventuallySpillUnderBackToBackLoad) {
  // 90 KB pool with 1 KB packets: sustained pressure may reserve up to
  // ~90 entries; a short burst must NOT spill.
  MyrinetParams p;
  Topology topo = itb_fixture();
  UpDown ud(topo, 0);
  RouteSet routes = build_itb_routes(topo, ud);
  Simulator sim;
  Network net(sim, topo, routes, p, PathPolicy::kSingle);
  for (int i = 0; i < 50; ++i) net.inject(kSrc, kDst, 1024);
  sim.run_until(ms(10));
  EXPECT_EQ(net.itb_spills(), 0u)
      << "re-injection keeps pace with ejection; pool never exhausts";
  EXPECT_EQ(net.packets_in_flight(), 0u);
}

TEST(ItbPriority, InTransitBeatsLocalInjection) {
  // The ITB host (on switch 4) also generates its own traffic.  With
  // priority enabled the in-transit packet's latency stays near zero-load;
  // with priority disabled it queues behind local packets.
  auto run = [](bool priority) {
    MyrinetParams p;
    p.chunk_flits = 8;
    p.itb_priority_over_injection = priority;
    Topology topo = itb_fixture();
    UpDown ud(topo, 0);
    RouteSet routes = build_itb_routes(topo, ud);
    Simulator sim;
    Network net(sim, topo, routes, p, PathPolicy::kSingle);
    Capture cap;
    cap.attach(net);
    RouteSet* routes_keepalive = &routes;
    (void)routes_keepalive;
    // Find the ITB host for (3, 2).
    const HostId itb_host = routes.alternatives(3, 2)[0].legs[0].end_host;
    const HostId other_dst = 0;  // host on switch 0
    // The ITB host floods its own link.
    for (int i = 0; i < 20; ++i) net.inject(itb_host, other_dst, 512);
    net.inject(kSrc, kDst, 512);
    sim.run_until(ms(20));
    TimePs itb_latency = -1;
    for (const auto& r : cap.records) {
      if (r.src == kSrc) itb_latency = r.deliver_time - r.inject_time;
    }
    return itb_latency;
  };
  const TimePs with_priority = run(true);
  const TimePs without_priority = run(false);
  ASSERT_GT(with_priority, 0);
  ASSERT_GT(without_priority, 0);
  // Without priority the in-transit packet waits behind ~19 local packets
  // (one may already be streaming when it becomes ready).
  EXPECT_GT(without_priority, with_priority + 10 * 516 * F);
}

TEST(ItbChain, TwoItbsAccumulateOverhead) {
  // Chain two fixture-like violations: build a ladder where the minimal
  // path needs two splits.
  //
  //      0
  //     / \ .
  //    1   2
  //    |   |
  //    3   4     and cables 3-4, plus 5 hanging under 3, cable 5-... :
  // Simpler: reuse enumerate on a 8x8 torus and find a pair whose best
  // alternative uses 2 ITBs, then check itbs_used matches num_itbs.
  MyrinetParams p;
  Topology topo = make_torus_2d(8, 8, 2);
  UpDown ud(topo, 0);
  RouteSet routes = build_itb_routes(topo, ud);
  SwitchId s_found = kNoSwitch, d_found = kNoSwitch;
  for (SwitchId s = 0; s < 64 && s_found == kNoSwitch; ++s) {
    for (SwitchId d = 0; d < 64; ++d) {
      if (s == d) continue;
      if (routes.alternatives(s, d)[0].num_itbs() == 2) {
        s_found = s;
        d_found = d;
        break;
      }
    }
  }
  ASSERT_NE(s_found, kNoSwitch) << "torus must have 2-ITB first alternatives";
  Simulator sim;
  Network net(sim, topo, routes, p, PathPolicy::kSingle);
  Capture cap;
  cap.attach(net);
  net.inject(topo.hosts_of_switch(s_found)[0], topo.hosts_of_switch(d_found)[0],
             512);
  sim.run_until(ms(5));
  ASSERT_EQ(cap.records.size(), 1u);
  EXPECT_EQ(cap.records[0].itbs_used, 2);
  EXPECT_EQ(net.packets_in_flight(), 0u);
}

TEST(ItbMetrics, DeliveryRecordCarriesRouteFacts) {
  MyrinetParams p;
  Topology topo = itb_fixture();
  UpDown ud(topo, 0);
  RouteSet routes = build_itb_routes(topo, ud);
  Simulator sim;
  Network net(sim, topo, routes, p, PathPolicy::kSingle);
  Capture cap;
  cap.attach(net);
  net.inject(kSrc, kDst, 256);
  sim.run_until(ms(2));
  ASSERT_EQ(cap.records.size(), 1u);
  EXPECT_EQ(cap.records[0].src, kSrc);
  EXPECT_EQ(cap.records[0].dst, kDst);
  EXPECT_EQ(cap.records[0].payload_flits, 256);
  EXPECT_EQ(cap.records[0].total_switch_hops, 2);
  EXPECT_EQ(cap.records[0].alt_index, 0);
}

}  // namespace
}  // namespace itb
