// Field-registry suite: every RunResult scalar flows through ONE table
// (harness/result_fields.hpp) into the full JSON, the canonical JSON, the
// CSV and the determinism comparison.  These tests round-trip a result
// through each surface and fail when a field reaches one emitter but not
// another — the drift that used to happen when json.cpp, report.cpp and
// same_simulated_metrics kept separate hand-written lists.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "harness/json.hpp"
#include "harness/report.hpp"
#include "harness/result_fields.hpp"
#include "harness/runner.hpp"

namespace itb {
namespace {

/// A RunResult whose every scalar field carries a distinctive value, so a
/// getter wired to the wrong member shows up as a duplicate or a missing
/// value on some surface.
RunResult distinctive_result() {
  RunResult r;
  r.offered = 1.25;
  r.accepted = 2.25;
  r.avg_latency_ns = 3.25;
  r.avg_latency_gen_ns = 4.25;
  r.p50_latency_ns = 5.25;
  r.p99_latency_ns = 6.25;
  r.latency_ci95_ns = 7.25;
  r.avg_itbs = 8.25;
  r.delivered = 101;
  r.spills = 102;
  r.fc_violations = 103;
  r.max_buffer_occupancy = 104;
  r.saturated = true;
  r.wall_ms = 9.25;
  r.events = 105;
  r.events_per_sec = 10.25;
  r.peak_event_queue_len = 106;
  r.events_coalesced = 107;
  r.workspace_reuses = 108;
  r.arena_bytes_peak = 109;
  r.heap_allocs_steady_state = 110;
  r.trace_records = 111;
  r.trace_dropped = 112;
  r.route_table_bytes = 114;
  r.route_build_ms = 11.25;
  r.route_segments_shared = 115;
  r.route_core_pairs = 120;
  r.route_core_bytes = 121;
  r.route_compose_ns_avg = 13.25;
  r.checked = false;
  r.invariant_violations = 113;
  r.shards = 116;
  r.window_ns = 12.25;
  r.windows_executed = 117;
  r.boundary_events = 118;
  r.boundary_ties = 119;
  r.barrier_wait_ms = 14.25;
  r.lane_imbalance = 15.25;
  r.mailbox_depth_peak = 122;
  r.cross_lane_credits = 123;
  r.trace_dropped_max_lane = 124;
  return r;
}

/// `"<key>":` — built with append (chained operator+ on temporaries trips
/// GCC 12's -Wrestrict false positive at -O2 under -Werror).
std::string key_needle(const char* key) {
  std::string s;
  s += '"';
  s += key;
  s += "\":";
  return s;
}

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> out;
  std::stringstream ss(line);
  for (std::string cell; std::getline(ss, cell, ',');) out.push_back(cell);
  return out;
}

TEST(ResultFields, RegistryKeysUniqueAndTyped) {
  std::set<std::string> keys;
  for (const ResultField& f : result_fields()) {
    ASSERT_NE(f.json_key, nullptr);
    EXPECT_FALSE(std::string(f.json_key).empty());
    EXPECT_TRUE(keys.insert(f.json_key).second)
        << "duplicate registry key " << f.json_key;
    ASSERT_NE(f.get, nullptr);
  }
}

TEST(ResultFields, GettersMapToDistinctMembers) {
  const RunResult r = distinctive_result();
  std::vector<FieldValue> values;
  for (const ResultField& f : result_fields()) values.push_back(f.get(r));
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (std::size_t j = i + 1; j < values.size(); ++j) {
      EXPECT_FALSE(values[i] == values[j])
          << result_fields()[i].json_key << " and "
          << result_fields()[j].json_key
          << " read the same value from a fully distinctive RunResult";
    }
  }
}

TEST(ResultFields, FullJsonCarriesEveryRegistryKey) {
  const std::string json = run_result_to_json(distinctive_result());
  for (const ResultField& f : result_fields()) {
    EXPECT_NE(json.find(key_needle(f.json_key)), std::string::npos)
        << f.json_key << " missing from the full JSON";
  }
}

TEST(ResultFields, CanonicalJsonIsExactlyTheSimulatedKeys) {
  const std::string canonical =
      run_result_to_canonical_json(distinctive_result());
  for (const ResultField& f : result_fields()) {
    const bool present =
        canonical.find(key_needle(f.json_key)) != std::string::npos;
    if (f.cls == FieldClass::kSimulated) {
      EXPECT_TRUE(present) << f.json_key << " missing from canonical JSON";
    } else {
      EXPECT_FALSE(present)
          << "host-side field " << f.json_key
          << " leaked into the canonical (golden-fixture) JSON";
    }
  }
}

TEST(ResultFields, CsvColumnsMatchRegistryOrder) {
  const std::string path = ::testing::TempDir() + "itb_fields_test.csv";
  std::remove(path.c_str());
  append_series_csv(path, "exp", "SCHEME", {{0.01, distinctive_result()}});

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::string row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  std::remove(path.c_str());

  const std::vector<std::string> cols = split_csv(header);
  const auto fields = result_fields();
  ASSERT_EQ(cols.size(), fields.size() + 2);
  EXPECT_EQ(cols[0], "experiment");
  EXPECT_EQ(cols[1], "scheme");
  for (std::size_t i = 0; i < fields.size(); ++i) {
    EXPECT_EQ(cols[i + 2], fields[i].json_key);
  }
  // Row width matches the header: a field emitted in the header but not
  // the row (or vice versa) shears the table.
  EXPECT_EQ(split_csv(row).size(), cols.size());
}

TEST(ResultFields, DeterminismComparisonUsesTheRegistryClasses) {
  const RunResult a = distinctive_result();

  // Host-side drift must not break the determinism predicate…
  RunResult b = a;
  b.wall_ms *= 2.0;
  b.events_per_sec += 1.0;
  b.workspace_reuses += 5;
  b.trace_records += 7;
  b.trace_dropped += 7;
  b.route_table_bytes += 11;
  b.route_build_ms += 0.5;
  b.route_segments_shared += 3;
  b.route_core_pairs += 19;
  b.route_core_bytes += 23;
  b.route_compose_ns_avg += 0.75;
  b.shards += 2;
  b.window_ns += 0.25;
  b.windows_executed += 9;
  b.boundary_events += 13;
  b.boundary_ties += 17;
  b.barrier_wait_ms += 0.125;
  b.lane_imbalance += 0.5;
  b.mailbox_depth_peak += 29;
  b.cross_lane_credits += 31;
  b.trace_dropped_max_lane += 37;
  EXPECT_TRUE(same_simulated_metrics(a, b));

  // …while any simulated scalar difference must.
  RunResult c = a;
  c.delivered += 1;
  EXPECT_FALSE(same_simulated_metrics(a, c));
  RunResult d = a;
  d.avg_latency_ns += 1e-9;
  EXPECT_FALSE(same_simulated_metrics(a, d));
  RunResult e = a;
  e.events_coalesced += 1;
  EXPECT_FALSE(same_simulated_metrics(a, e));
}

TEST(ResultFields, RegistryCoversEveryRunResultScalar) {
  // Drift guard: adding a scalar to RunResult without registering it (or
  // registering without adding) trips this count.  Update BOTH together —
  // result_fields.cpp is the single source the emitters iterate.
  EXPECT_EQ(result_fields().size(), 41u);
}

}  // namespace
}  // namespace itb
