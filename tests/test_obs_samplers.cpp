// Time-series sampler suite: slicing the measurement window must not
// perturb the simulation, windows must tile the window exactly, and the
// windowed series must re-aggregate to the steady-state RunResult numbers
// (deltas of cumulative counters guarantee it) — including the acceptance
// check that busy-weighted windowed link utilization reproduces
// ChannelUtil::utilization within rounding.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "harness/runner.hpp"
#include "obs/samplers.hpp"
#include "topo/generators.hpp"
#include "traffic/patterns.hpp"

namespace itb {
namespace {

RunConfig sampled_config() {
  RunConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.02;
  cfg.warmup = us(30);
  cfg.measure = us(80);
  cfg.engine = EngineKind::kPod;
  cfg.sample_period = cfg.measure / 16;
  cfg.collect_link_util = true;
  cfg.sample_link_util = true;
  return cfg;
}

RunResult sampled_point(const Testbed& tb, const RunConfig& cfg) {
  UniformPattern pat(tb.topo().num_hosts());
  return run_point(tb, RoutingScheme::kItbRr, pat, cfg);
}

TEST(ObsSamplers, SamplingDoesNotPerturbTheSimulation) {
  Testbed tb(make_torus_2d(4, 4, 4));
  RunConfig cfg = sampled_config();
  const RunResult sampled = sampled_point(tb, cfg);
  cfg.sample_period = 0;
  cfg.sample_link_util = false;
  const RunResult plain = sampled_point(tb, cfg);

  EXPECT_GT(sampled.delivered, 0u);
  EXPECT_FALSE(sampled.samples.empty());
  EXPECT_TRUE(plain.samples.empty());

  // Every simulated metric must agree bit-exactly once the sampled run's
  // extra surface (the samples themselves) is set aside.
  RunResult cmp = sampled;
  cmp.samples.clear();
  EXPECT_TRUE(same_simulated_metrics(cmp, plain));
}

TEST(ObsSamplers, SamplesAreDeterministic) {
  Testbed tb(make_torus_2d(4, 4, 4));
  const RunConfig cfg = sampled_config();
  const RunResult a = sampled_point(tb, cfg);
  const RunResult b = sampled_point(tb, cfg);
  // same_simulated_metrics compares the sampled series field-by-field when
  // both runs sampled.
  EXPECT_FALSE(a.samples.empty());
  EXPECT_TRUE(same_simulated_metrics(a, b));
}

TEST(ObsSamplers, WindowsTileTheMeasurementWindow) {
  Testbed tb(make_torus_2d(4, 4, 4));
  const RunConfig cfg = sampled_config();
  const RunResult r = sampled_point(tb, cfg);

  ASSERT_GE(r.samples.size(), 16u);
  EXPECT_EQ(r.samples.front().t_start, cfg.warmup);
  EXPECT_EQ(r.samples.back().t_end, cfg.warmup + cfg.measure);
  for (std::size_t i = 1; i < r.samples.size(); ++i) {
    EXPECT_EQ(r.samples[i].t_start, r.samples[i - 1].t_end);
  }
  for (const TimeSeriesSample& s : r.samples) {
    EXPECT_LT(s.t_start, s.t_end);
    EXPECT_EQ(s.link_util.size(),
              static_cast<std::size_t>(tb.topo().num_channels()));
  }
}

TEST(ObsSamplers, WindowsReaggregateToSteadyStateTraffic) {
  Testbed tb(make_torus_2d(4, 4, 4));
  const RunConfig cfg = sampled_config();
  const RunResult r = sampled_point(tb, cfg);
  ASSERT_FALSE(r.samples.empty());

  // Delivered packets and simulator events are exact deltas: their sums
  // reproduce the run totals for the measurement window.
  std::uint64_t delivered = 0;
  for (const TimeSeriesSample& s : r.samples) delivered += s.delivered;
  EXPECT_EQ(delivered, r.delivered);

  // Accepted traffic is a rate over each window; re-weighting by window
  // width recovers the whole-window rate.
  double flit_ns_sum = 0.0;  // sum of rate * window width
  for (const TimeSeriesSample& s : r.samples) {
    flit_ns_sum += s.accepted_flits_per_ns_per_switch *
                   static_cast<double>(s.t_end - s.t_start);
  }
  const double measure = static_cast<double>(cfg.measure);
  EXPECT_NEAR(flit_ns_sum / measure, r.accepted, 1e-12 + 1e-9 * r.accepted);

  // Mean latency, delivery-weighted across windows, reproduces the run's
  // average (windows with no deliveries report 0 and carry no weight).
  double lat_weighted = 0.0;
  std::uint64_t lat_count = 0;
  for (const TimeSeriesSample& s : r.samples) {
    lat_weighted += s.avg_latency_ns * static_cast<double>(s.delivered);
    lat_count += s.delivered;
  }
  ASSERT_GT(lat_count, 0u);
  EXPECT_NEAR(lat_weighted / static_cast<double>(lat_count), r.avg_latency_ns,
              1e-6 * r.avg_latency_ns);
}

TEST(ObsSamplers, WindowedLinkUtilReproducesAggregateWithinRounding) {
  Testbed tb(make_torus_2d(4, 4, 4));
  const RunConfig cfg = sampled_config();
  const RunResult r = sampled_point(tb, cfg);
  ASSERT_FALSE(r.samples.empty());
  ASSERT_FALSE(r.link_util.empty());

  const double measure = static_cast<double>(cfg.measure);
  for (const ChannelUtil& cu : r.link_util) {
    double busy = 0.0;  // window-width-weighted busy fraction
    for (const TimeSeriesSample& s : r.samples) {
      ASSERT_LT(static_cast<std::size_t>(cu.channel), s.link_util.size());
      busy += static_cast<double>(
                  s.link_util[static_cast<std::size_t>(cu.channel)]) *
              static_cast<double>(s.t_end - s.t_start);
    }
    // Samples are stored as float: allow that rounding, nothing more.
    EXPECT_NEAR(busy / measure, cu.utilization, 1e-4);
  }
}

TEST(ObsSamplers, CsvEmission) {
  Testbed tb(make_torus_2d(4, 4, 4));
  const RunConfig cfg = sampled_config();
  const RunResult r = sampled_point(tb, cfg);

  const std::string path = ::testing::TempDir() + "itb_samples_test.csv";
  std::remove(path.c_str());
  append_samples_csv(path, "torus-4x4/uniform", "ITB-RR", r.samples);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header,
            "experiment,scheme,window,t_start_ps,t_end_ps,delivered,accepted,"
            "avg_latency_ns,events,queue_len,itb_pool_frac,mean_link_util,"
            "max_link_util");
  std::size_t rows = 0;
  for (std::string line; std::getline(in, line);) ++rows;
  EXPECT_EQ(rows, r.samples.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace itb
