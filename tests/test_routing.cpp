// Minimal-path enumeration, simple_routes selection, ITB splitting and the
// runtime route builder.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/itb_split.hpp"
#include "core/route_builder.hpp"
#include "core/route_stats.hpp"
#include "route/minimal_paths.hpp"
#include "route/simple_routes.hpp"
#include "route/updown.hpp"
#include "sim/rng.hpp"
#include "topo/generators.hpp"

namespace itb {
namespace {

std::size_t uz(std::int64_t v) { return static_cast<std::size_t>(v); }

// ---- minimal path enumeration ----

TEST(MinimalPaths, CountMatchesBinomialOnMesh) {
  // On a mesh, the number of minimal paths between opposite corners of an
  // a x b sub-rectangle is C(a+b, a).
  const Topology t = make_mesh_2d(4, 4, 1);
  EXPECT_EQ(count_minimal_paths(t, 0, 5, 100), 2);    // 1x1 block
  EXPECT_EQ(count_minimal_paths(t, 0, 10, 100), 6);   // 2x2 block
  EXPECT_EQ(count_minimal_paths(t, 0, 15, 100), 20);  // 3x3 block
  EXPECT_EQ(count_minimal_paths(t, 0, 3, 100), 1);    // straight line
}

TEST(MinimalPaths, AllShortestDistinctConsistent) {
  const Topology t = make_torus_2d(5, 5, 1);
  const auto dist = t.all_switch_distances();
  for (SwitchId s = 0; s < t.num_switches(); ++s) {
    for (SwitchId d = 0; d < t.num_switches(); ++d) {
      const auto paths = enumerate_minimal_paths(t, s, d, 10);
      ASSERT_FALSE(paths.empty());
      std::set<std::vector<CableId>> seen;
      for (const auto& p : paths) {
        EXPECT_TRUE(path_is_consistent(t, p));
        EXPECT_EQ(p.hops(), dist[uz(s) * uz(t.num_switches()) + uz(d)]);
        EXPECT_EQ(p.src(), s);
        EXPECT_EQ(p.dst(), d);
        EXPECT_TRUE(seen.insert(p.cable).second);
      }
    }
  }
}

TEST(MinimalPaths, CapRespected) {
  const Topology t = make_torus_2d(8, 8, 1);
  EXPECT_EQ(enumerate_minimal_paths(t, 0, 27, 10).size(), 10u);
  EXPECT_EQ(enumerate_minimal_paths(t, 0, 27, 3).size(), 3u);
}

TEST(MinimalPaths, SelfAndAdjacent) {
  const Topology t = make_mesh_2d(2, 2, 1);
  const auto self = enumerate_minimal_paths(t, 1, 1, 5);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self[0].hops(), 0);
  const auto adj = enumerate_minimal_paths(t, 0, 1, 5);
  ASSERT_EQ(adj.size(), 1u);
  EXPECT_EQ(adj[0].hops(), 1);
}

// ---- simple_routes ----

TEST(SimpleRoutes, OneLegalRoutePerPair) {
  const Topology t = make_torus_2d(4, 4, 2);
  const UpDown ud(t, 0);
  const SimpleRoutes sr(t, ud);
  for (SwitchId s = 0; s < 16; ++s) {
    for (SwitchId d = 0; d < 16; ++d) {
      const SwitchPath& p = sr.route(s, d);
      EXPECT_TRUE(path_is_consistent(t, p));
      EXPECT_TRUE(ud.legal(p));
      EXPECT_EQ(p.src(), s);
      EXPECT_EQ(p.dst(), d);
      EXPECT_EQ(p.hops(), ud.legal_distance(s, d));
    }
  }
}

TEST(SimpleRoutes, WeightsEqualRouteCrossings) {
  const Topology t = make_mesh_2d(3, 3, 1);
  const UpDown ud(t, 0);
  const SimpleRoutes sr(t, ud);
  std::vector<int> expect(uz(t.num_channels()), 0);
  for (SwitchId s = 0; s < 9; ++s) {
    for (SwitchId d = 0; d < 9; ++d) {
      const SwitchPath& p = sr.route(s, d);
      for (std::size_t h = 0; h < p.cable.size(); ++h) {
        ++expect[uz(t.channel_from_switch(p.sw[h], p.cable[h]))];
      }
    }
  }
  EXPECT_EQ(sr.channel_weights(), expect);
}

TEST(SimpleRoutes, DeterministicPerSeedAndSensitiveToSeed) {
  const Topology t = make_torus_2d(4, 4, 1);
  const UpDown ud(t, 0);
  SimpleRoutesOptions o1;
  o1.seed = 7;
  const SimpleRoutes a(t, ud, o1), b(t, ud, o1);
  int diff_seed = 0;
  SimpleRoutesOptions o2;
  o2.seed = 8;
  const SimpleRoutes c(t, ud, o2);
  for (SwitchId s = 0; s < 16; ++s) {
    for (SwitchId d = 0; d < 16; ++d) {
      EXPECT_EQ(a.route(s, d), b.route(s, d));
      if (!(a.route(s, d) == c.route(s, d))) ++diff_seed;
    }
  }
  EXPECT_GT(diff_seed, 0) << "different seeds should balance differently";
}

TEST(SimpleRoutes, BalancesBetterThanFirstCandidate) {
  const Topology t = make_torus_2d(8, 8, 1);
  const UpDown ud(t, 0);
  const SimpleRoutes sr(t, ud);
  // Max channel weight with balancing must beat always-take-candidate-0.
  std::vector<int> naive(uz(t.num_channels()), 0);
  for (SwitchId s = 0; s < 64; ++s) {
    for (SwitchId d = 0; d < 64; ++d) {
      if (s == d) continue;
      const auto p = ud.shortest_legal_paths(s, d, 1).front();
      for (std::size_t h = 0; h < p.cable.size(); ++h) {
        ++naive[uz(t.channel_from_switch(p.sw[h], p.cable[h]))];
      }
    }
  }
  const int naive_max = *std::max_element(naive.begin(), naive.end());
  const auto& w = sr.channel_weights();
  const int balanced_max = *std::max_element(w.begin(), w.end());
  EXPECT_LT(balanced_max, naive_max);
}

// ---- ITB splitting ----

TEST(ItbSplit, LegalPathNeedsNoSplit) {
  const Topology t = make_torus_2d(4, 4, 1);
  const UpDown ud(t, 0);
  const auto p = ud.shortest_legal_paths(5, 10, 1).front();
  EXPECT_TRUE(itb_split_points(ud, p).empty());
}

TEST(ItbSplit, SegmentsLegalAndConcatenate) {
  std::vector<Topology> topos;
  topos.push_back(make_torus_2d(8, 8, 1));
  topos.push_back(make_torus_2d_express(8, 8, 1));
  Rng rng(3);
  topos.push_back(make_irregular(14, 2, 5, rng));
  for (const Topology& t : topos) {
    const UpDown ud(t, 0);
    int with_split = 0;
    for (SwitchId s = 0; s < t.num_switches(); s += 3) {
      for (SwitchId d = 0; d < t.num_switches(); ++d) {
        if (s == d) continue;
        for (const auto& p : enumerate_minimal_paths(t, s, d, 4)) {
          const auto splits = itb_split_points(ud, p);
          const auto segs = split_path(p, splits);
          ASSERT_EQ(segs.size(), splits.size() + 1);
          if (!splits.empty()) ++with_split;
          // Each segment legal, consistent; concatenation reproduces p.
          std::vector<CableId> cat;
          for (std::size_t i = 0; i < segs.size(); ++i) {
            EXPECT_TRUE(ud.legal(segs[i])) << t.name();
            EXPECT_TRUE(path_is_consistent(t, segs[i]));
            if (i > 0) {
              EXPECT_EQ(segs[i].src(), segs[i - 1].dst());
            }
            cat.insert(cat.end(), segs[i].cable.begin(), segs[i].cable.end());
          }
          EXPECT_EQ(cat, p.cable);
        }
      }
    }
    EXPECT_GT(with_split, 0) << t.name() << ": expected some splits";
  }
}

TEST(ItbSplit, SplitCountIsMinimalForThePath) {
  // Greedy split at each violation is optimal for a fixed path: fewer
  // splits would leave one segment with a down->up transition.  Verify by
  // checking that merging any adjacent pair of segments is illegal.
  const Topology t = make_torus_2d(8, 8, 1);
  const UpDown ud(t, 0);
  int checked = 0;
  for (SwitchId s = 0; s < 64 && checked < 200; s += 5) {
    for (SwitchId d = 0; d < 64 && checked < 200; ++d) {
      if (s == d) continue;
      for (const auto& p : enumerate_minimal_paths(t, s, d, 3)) {
        const auto splits = itb_split_points(ud, p);
        if (splits.empty()) continue;
        const auto segs = split_path(p, splits);
        for (std::size_t i = 0; i + 1 < segs.size(); ++i) {
          SwitchPath merged = segs[i];
          merged.sw.insert(merged.sw.end(), segs[i + 1].sw.begin() + 1,
                           segs[i + 1].sw.end());
          merged.cable.insert(merged.cable.end(), segs[i + 1].cable.begin(),
                              segs[i + 1].cable.end());
          EXPECT_FALSE(ud.legal(merged));
          ++checked;
        }
      }
    }
  }
  EXPECT_GT(checked, 0);
}

// ---- route builder ----

// Follow a Route's ports hop by hop through the topology and check they
// form a real walk ending at the right hosts.
void check_route_walk(const Topology& t, const RouteView& r,
                      SwitchId src_sw) {
  SwitchId at = src_sw;
  std::vector<SwitchId> visited{at};
  for (std::size_t li = 0; li < r.legs.size(); ++li) {
    const LegView leg = r.legs[li];
    const bool final_leg = li + 1 == r.legs.size();
    for (std::size_t pi = 0; pi < leg.ports.size(); ++pi) {
      const PortPeer& peer = t.peer(at, leg.ports[pi]);
      const bool last_port = pi + 1 == leg.ports.size();
      if (!final_leg && last_port) {
        ASSERT_EQ(peer.kind, PeerKind::kHost);
        EXPECT_EQ(peer.host, leg.end_host);
        EXPECT_EQ(t.host(leg.end_host).sw, at);
      } else {
        ASSERT_EQ(peer.kind, PeerKind::kSwitch) << "port must lead onward";
        at = peer.sw;
        visited.push_back(at);
      }
    }
  }
  EXPECT_EQ(at, r.dst_switch);
  // The store's own reconstruction (composition tables / stored walk) must
  // agree with the topology walk above.
  EXPECT_EQ(visited, materialize_route(r).switches);
}

TEST(RouteBuilder, UpdownRoutesWalkTheTopology) {
  const Topology t = make_torus_2d(4, 4, 2);
  const UpDown ud(t, 0);
  const SimpleRoutes sr(t, ud);
  const RouteSet rs = build_updown_routes(t, sr);
  EXPECT_EQ(rs.algorithm(), RoutingAlgorithm::kUpDown);
  for (SwitchId s = 0; s < 16; ++s) {
    for (SwitchId d = 0; d < 16; ++d) {
      const auto& alts = rs.alternatives(s, d);
      ASSERT_EQ(alts.size(), 1u);
      EXPECT_EQ(alts[0].num_itbs(), 0);
      EXPECT_EQ(alts[0].legs.size(), 1u);
      check_route_walk(t, alts[0], s);
    }
  }
}

TEST(RouteBuilder, ItbRoutesAreMinimalAndWalk) {
  const Topology t = make_torus_2d(4, 4, 2);
  const UpDown ud(t, 0);
  const RouteSet rs = build_itb_routes(t, ud);
  const auto dist = t.all_switch_distances();
  for (SwitchId s = 0; s < 16; ++s) {
    for (SwitchId d = 0; d < 16; ++d) {
      const auto& alts = rs.alternatives(s, d);
      ASSERT_FALSE(alts.empty());
      ASSERT_LE(alts.size(), 10u);
      for (const RouteView r : alts) {
        EXPECT_EQ(r.total_switch_hops, dist[uz(s) * 16 + uz(d)]);
        EXPECT_EQ(static_cast<int>(r.legs.size()), r.num_itbs() + 1);
        check_route_walk(t, r, s);
      }
    }
  }
}

TEST(RouteBuilder, PreferFewestOrdersAlternatives) {
  const Topology t = make_torus_2d(8, 8, 2);
  const UpDown ud(t, 0);
  ItbBuildOptions o;
  o.prefer_fewest_itbs = true;
  const RouteSet rs = build_itb_routes(t, ud, o);
  for (SwitchId s = 0; s < 64; s += 9) {
    for (SwitchId d = 0; d < 64; ++d) {
      const auto& alts = rs.alternatives(s, d);
      for (std::size_t i = 1; i < alts.size(); ++i) {
        EXPECT_LE(alts[i - 1].num_itbs(), alts[i].num_itbs());
      }
    }
  }
}

TEST(RouteBuilder, ItbHostsSpreadAcrossSwitchHosts) {
  const Topology t = make_torus_2d(8, 8, 8);
  const UpDown ud(t, 0);
  const RouteSet rs = build_itb_routes(t, ud);
  std::set<HostId> used;
  for (SwitchId s = 0; s < 64; ++s) {
    for (SwitchId d = 0; d < 64; ++d) {
      for (const RouteView r : rs.alternatives(s, d)) {
        for (std::size_t li = 0; li + 1 < r.legs.size(); ++li) {
          used.insert(r.legs[li].end_host);
        }
      }
    }
  }
  // With hashing over 8 hosts per switch, far more than one host per
  // switch must be in use overall.
  EXPECT_GT(used.size(), 100u);
}

TEST(RouteBuilder, SameSwitchPairHasEmptyPortList) {
  const Topology t = make_torus_2d(4, 4, 2);
  const UpDown ud(t, 0);
  const RouteSet rs = build_itb_routes(t, ud);
  const auto& alts = rs.alternatives(3, 3);
  ASSERT_EQ(alts.size(), 1u);
  EXPECT_TRUE(alts[0].legs[0].ports.empty());
  EXPECT_EQ(alts[0].total_switch_hops, 0);
}

TEST(RouteBuilder, SplitSwitchWithoutHostsFallsBackToLegal) {
  // Hand-built network where the only minimal path's split switch has no
  // hosts: triangle with a cross edge.  Switches: 0 root, 1, 2, 3.
  Topology t(4, 8, "hostless-split");
  t.connect_auto(0, 1);
  t.connect_auto(0, 2);
  t.connect_auto(1, 3);
  t.connect_auto(2, 3);
  t.attach_hosts(1, 1);
  t.attach_hosts(2, 1);
  // No hosts on 0 and 3.  Pair (1, 2): minimal 1-0-2 (up then down, legal)
  // and 1-3-2 (down then up, illegal; split switch 3 has no hosts).
  const UpDown ud(t, 0);
  const RouteSet rs = build_itb_routes(t, ud);
  const auto& alts = rs.alternatives(1, 2);
  ASSERT_FALSE(alts.empty());
  for (const RouteView r : alts) {
    EXPECT_EQ(r.num_itbs(), 0) << "infeasible split candidates must be dropped";
  }
}

TEST(RouteStats, TorusMatchesPaperProse) {
  // §4.7.1: avg distance 4.57 (up*/down*) vs 4.06 (minimal/ITB); 80%
  // minimal paths for UP/DOWN; 100% for ITB by construction.
  const Topology t = make_torus_2d(8, 8, 8);
  const UpDown ud(t, 0);
  const SimpleRoutes sr(t, ud);
  const auto ud_stats = analyze_routes(t, build_updown_routes(t, sr));
  EXPECT_NEAR(ud_stats.avg_hops_sp, 4.57, 0.03);
  EXPECT_NEAR(ud_stats.minimal_fraction_sp, 0.80, 0.05);
  EXPECT_EQ(ud_stats.avg_itbs_sp, 0.0);

  const auto itb_stats = analyze_routes(t, build_itb_routes(t, ud));
  EXPECT_NEAR(itb_stats.avg_hops_sp, 4.06, 0.02);
  EXPECT_DOUBLE_EQ(itb_stats.minimal_fraction_sp, 1.0);
  // Paper: ITB-SP uses 0.43 in-transit buffers per message under uniform
  // traffic; the static per-pair average with DFS-ordered alternatives
  // lands in the same range.
  EXPECT_NEAR(itb_stats.avg_itbs_sp, 0.43, 0.12);
  EXPECT_GT(itb_stats.avg_alternatives, 3.0);
  EXPECT_LE(itb_stats.avg_alternatives, 10.0);
}

class RouteBuilderRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouteBuilderRandom, ItbTableValidOnRandomIrregular) {
  Rng rng(GetParam());
  const Topology t = make_irregular(12, 2, 5, rng);
  const UpDown ud(t, 0);
  const RouteSet rs = build_itb_routes(t, ud);
  for (SwitchId s = 0; s < t.num_switches(); ++s) {
    for (SwitchId d = 0; d < t.num_switches(); ++d) {
      const auto& alts = rs.alternatives(s, d);
      ASSERT_FALSE(alts.empty());
      for (const RouteView r : alts) check_route_walk(t, r, s);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouteBuilderRandom,
                         ::testing::Range<std::uint64_t>(200, 210));

}  // namespace
}  // namespace itb
