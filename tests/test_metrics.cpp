// Metric collectors: latency/throughput accounting and link utilization.
#include <gtest/gtest.h>

#include "core/route_builder.hpp"
#include "metrics/collector.hpp"
#include "metrics/link_util.hpp"
#include "net/network.hpp"
#include "route/simple_routes.hpp"
#include "sim/simulator.hpp"
#include "topo/generators.hpp"

namespace itb {
namespace {

constexpr TimePs F = 6250;

struct Rig {
  Topology topo = make_mesh_2d(1, 2, 2);
  UpDown ud{topo, 0};
  RouteSet routes{build_updown_routes(topo, SimpleRoutes(topo, ud))};
  Simulator sim;
  MyrinetParams params;
};

TEST(Collector, LatencyAndFlitAccounting) {
  Rig rig;
  Network net(rig.sim, rig.topo, rig.routes, rig.params, PathPolicy::kSingle);
  MetricsCollector m(rig.topo.num_switches());
  m.attach(net);
  net.inject(0, 2, 512);
  net.inject(1, 3, 256);
  rig.sim.run_until(ms(1));
  EXPECT_EQ(m.delivered(), 2u);
  EXPECT_EQ(m.delivered_flits(), 512u + 256u);
  EXPECT_GT(m.avg_latency_ns(), 0.0);
  EXPECT_GE(m.avg_latency_from_generation_ns(), m.avg_latency_ns());
  EXPECT_GT(m.p50_latency_ns(), 0.0);
  EXPECT_GE(m.p99_latency_ns(), m.p50_latency_ns());
  EXPECT_EQ(m.avg_itbs_per_message(), 0.0);
}

TEST(Collector, AcceptedTrafficComputation) {
  Rig rig;
  Network net(rig.sim, rig.topo, rig.routes, rig.params, PathPolicy::kSingle);
  MetricsCollector m(rig.topo.num_switches());
  m.attach(net);
  net.inject(0, 2, 512);
  rig.sim.run_until(ms(1));
  // 512 flits in 1 ms over 2 switches = 0.256 flits/ns/switch... no:
  // 512 / 1e6 ns / 2 = 0.000256.
  EXPECT_NEAR(m.accepted_flits_per_ns_per_switch(rig.sim.now()), 0.000256,
              1e-9);
}

TEST(Collector, ResetWindowClears) {
  Rig rig;
  Network net(rig.sim, rig.topo, rig.routes, rig.params, PathPolicy::kSingle);
  MetricsCollector m(rig.topo.num_switches());
  m.attach(net);
  net.inject(0, 2, 512);
  rig.sim.run_until(ms(1));
  EXPECT_EQ(m.delivered(), 1u);
  m.reset_window(rig.sim.now());
  EXPECT_EQ(m.delivered(), 0u);
  EXPECT_EQ(m.delivered_flits(), 0u);
  EXPECT_EQ(m.avg_latency_ns(), 0.0);
  net.inject(2, 0, 512);
  rig.sim.run_until(ms(2));
  EXPECT_EQ(m.delivered(), 1u);
}

TEST(LinkUtil, SingleFlowUtilizationExact) {
  Rig rig;
  rig.params.chunk_flits = 1;
  Network net(rig.sim, rig.topo, rig.routes, rig.params, PathPolicy::kSingle);
  net.inject(0, 2, 512);  // host 0 (switch 0) -> host 2 (switch 1)
  rig.sim.run_until(ms(1));
  const auto utils = measure_channel_utilization(net, ms(1));
  // Only fabric channels reported by default: 2 directions of 1 cable.
  ASSERT_EQ(utils.size(), 2u);
  // The fabric hop carries 514 flits (515 on the wire minus the header
  // byte stripped by switch 0).
  double expect = 514.0 * static_cast<double>(F) / static_cast<double>(ms(1));
  bool found_busy = false;
  for (const auto& u : utils) {
    if (u.from_sw == 0 && u.to_sw == 1) {
      EXPECT_NEAR(u.utilization, expect, 1e-9);
      found_busy = true;
    } else {
      EXPECT_EQ(u.utilization, 0.0);
    }
    EXPECT_FALSE(u.to_host);
  }
  EXPECT_TRUE(found_busy);
}

TEST(LinkUtil, HostLinksIncludedOnRequest) {
  Rig rig;
  Network net(rig.sim, rig.topo, rig.routes, rig.params, PathPolicy::kSingle);
  net.inject(0, 2, 512);
  rig.sim.run_until(ms(1));
  const auto utils = measure_channel_utilization(net, ms(1), true);
  EXPECT_EQ(utils.size(), 2u * static_cast<std::size_t>(rig.topo.num_cables()));
}

TEST(LinkUtil, SummaryStatistics) {
  const Topology topo = make_torus_2d(4, 4, 2);
  UpDown ud(topo, 0);
  RouteSet routes = build_updown_routes(topo, SimpleRoutes(topo, ud));
  Simulator sim;
  MyrinetParams params;
  Network net(sim, topo, routes, params, PathPolicy::kSingle);
  Rng rng(3);
  for (int i = 0; i < 400; ++i) {
    const auto s = static_cast<HostId>(rng.next_below(32));
    auto d = static_cast<HostId>(rng.next_below(32));
    if (d == s) d = static_cast<HostId>((d + 1) % 32);
    net.inject(s, d, 512);
  }
  sim.run_until(ms(20));
  ASSERT_EQ(net.packets_in_flight(), 0u);
  const auto utils = measure_channel_utilization(net, ms(20));
  const auto sum = summarize_link_utilization(utils, topo, 0);
  EXPECT_GT(sum.max_utilization, 0.0);
  EXPECT_LE(sum.max_utilization, 1.0);
  EXPECT_GE(sum.max_utilization, sum.avg_utilization);
  EXPECT_GE(sum.fraction_below_10pct, 0.0);
  EXPECT_LE(sum.fraction_below_10pct, 1.0);
  EXPECT_GE(sum.max_near_root, sum.max_far_from_root * 0.0);  // both defined
}

TEST(LinkUtil, GridRenderingMentionsEverySwitch) {
  const Topology topo = make_torus_2d(4, 4, 1);
  UpDown ud(topo, 0);
  RouteSet routes = build_updown_routes(topo, SimpleRoutes(topo, ud));
  Simulator sim;
  MyrinetParams params;
  Network net(sim, topo, routes, params, PathPolicy::kSingle);
  net.inject(0, 15, 512);
  sim.run_until(ms(1));
  const auto utils = measure_channel_utilization(net, ms(1));
  const std::string grid = render_grid_utilization(utils, topo);
  EXPECT_NE(grid.find("00>"), std::string::npos);
  EXPECT_NE(grid.find("15>"), std::string::npos);
  EXPECT_NE(grid.find('%'), std::string::npos);
}

TEST(LinkUtil, EmptyWindowYieldsNothing) {
  Rig rig;
  Network net(rig.sim, rig.topo, rig.routes, rig.params, PathPolicy::kSingle);
  EXPECT_TRUE(measure_channel_utilization(net, 0).empty());
}

}  // namespace
}  // namespace itb
