// Per-packet event tracing: exact milestone sequences for plain and
// in-transit routes, and aggregate consistency at scale.
#include <gtest/gtest.h>

#include <vector>

#include "core/route_builder.hpp"
#include "net/network.hpp"
#include "route/simple_routes.hpp"
#include "sim/simulator.hpp"
#include "topo/generators.hpp"
#include "traffic/generator.hpp"
#include "traffic/patterns.hpp"

namespace itb {
namespace {

// The 5-switch fixture from test_network_itb: pair (3 -> 2) has a unique
// minimal path with one in-transit host on switch 4.
Topology itb_fixture() {
  Topology t(5, 8, "itb-fixture");
  t.connect_auto(0, 1);
  t.connect_auto(0, 2);
  t.connect_auto(1, 3);
  t.connect_auto(2, 4);
  t.connect_auto(3, 4);
  for (SwitchId s = 0; s < 5; ++s) t.attach_hosts(s, 2);
  return t;
}

TEST(PacketEvents, PlainRouteSequence) {
  Topology topo = make_mesh_2d(1, 3, 1);
  UpDown ud(topo, 0);
  RouteSet routes = build_updown_routes(topo, SimpleRoutes(topo, ud));
  Simulator sim;
  MyrinetParams params;
  Network net(sim, topo, routes, params, PathPolicy::kSingle);
  std::vector<PacketEventRecord> events;
  net.set_packet_event_sink(
      [&](const PacketEventRecord& r) { events.push_back(r); });
  net.inject(0, 2, 512);
  sim.run_until(ms(1));

  ASSERT_EQ(events.size(), 5u);  // injected, 3 headers, delivered
  EXPECT_EQ(events[0].event, PacketEvent::kInjected);
  EXPECT_EQ(events[0].host, 0);
  EXPECT_EQ(events[1].event, PacketEvent::kHeaderAtSwitch);
  EXPECT_EQ(events[1].sw, 0);
  EXPECT_EQ(events[2].sw, 1);
  EXPECT_EQ(events[3].sw, 2);
  EXPECT_EQ(events[4].event, PacketEvent::kDelivered);
  EXPECT_EQ(events[4].host, 2);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].time, events[i - 1].time);
    EXPECT_EQ(events[i].packet_id, events[0].packet_id);
  }
}

TEST(PacketEvents, ItbRouteSequence) {
  Topology topo = itb_fixture();
  UpDown ud(topo, 0);
  RouteSet routes = build_itb_routes(topo, ud);
  Simulator sim;
  MyrinetParams params;
  Network net(sim, topo, routes, params, PathPolicy::kSingle);
  std::vector<PacketEventRecord> events;
  net.set_packet_event_sink(
      [&](const PacketEventRecord& r) { events.push_back(r); });
  // Host 6 (switch 3) -> host 4 (switch 2): leg 3-4 then 4-2, ITB at a
  // host of switch 4.
  net.inject(6, 4, 512);
  sim.run_until(ms(2));

  std::vector<PacketEvent> kinds;
  for (const auto& e : events) kinds.push_back(e.event);
  EXPECT_EQ(kinds, (std::vector<PacketEvent>{
                       PacketEvent::kInjected,
                       PacketEvent::kHeaderAtSwitch,   // switch 3
                       PacketEvent::kHeaderAtSwitch,   // switch 4
                       PacketEvent::kEjectedAtItb,     // host on switch 4
                       PacketEvent::kReinjectionReady,
                       PacketEvent::kHeaderAtSwitch,   // switch 4 again
                       PacketEvent::kHeaderAtSwitch,   // switch 2
                       PacketEvent::kDelivered,
                   }));
  EXPECT_EQ(events[1].sw, 3);
  EXPECT_EQ(events[2].sw, 4);
  EXPECT_EQ(topo.host(events[3].host).sw, 4);
  EXPECT_EQ(events[3].host, events[4].host);
  EXPECT_EQ(events[5].sw, 4);
  EXPECT_EQ(events[6].sw, 2);
  EXPECT_EQ(events.back().host, 4);
  // Detection + DMA delay separates ejection from readiness exactly.
  EXPECT_EQ(events[4].time - events[3].time,
            params.itb_detect_delay + params.itb_dma_delay);
}

TEST(PacketEvents, AggregateConsistencyUnderLoad) {
  Topology topo = make_torus_2d(4, 4, 2);
  UpDown ud(topo, 0);
  RouteSet routes = build_itb_routes(topo, ud);
  Simulator sim;
  MyrinetParams params;
  Network net(sim, topo, routes, params, PathPolicy::kRoundRobin, 3);
  std::uint64_t injected = 0, delivered = 0, headers = 0, ejected = 0,
                ready = 0;
  net.set_packet_event_sink([&](const PacketEventRecord& r) {
    switch (r.event) {
      case PacketEvent::kInjected: ++injected; break;
      case PacketEvent::kDelivered: ++delivered; break;
      case PacketEvent::kHeaderAtSwitch: ++headers; break;
      case PacketEvent::kEjectedAtItb: ++ejected; break;
      case PacketEvent::kReinjectionReady: ++ready; break;
    }
  });
  UniformPattern pattern(topo.num_hosts());
  TrafficConfig cfg;
  cfg.load_flits_per_ns_per_switch = 0.03;
  TrafficGenerator gen(sim, net, pattern, cfg);
  gen.start();
  sim.run_until(us(400));
  gen.stop();
  sim.run_until(sim.now() + ms(10));

  EXPECT_EQ(injected, net.packets_injected());
  EXPECT_EQ(delivered, net.packets_delivered());
  EXPECT_EQ(injected, delivered);
  EXPECT_EQ(ejected, ready) << "every ejection must become a re-injection";
  // Headers: one per switch visit; every packet visits >= 1 switch and
  // an ITB visit re-enters its switch.
  EXPECT_GE(headers, delivered);
}

TEST(PacketEvents, NoSinkMeansNoOverheadPath) {
  // Without a sink the run must behave identically (same deliveries).
  Topology topo = make_torus_2d(4, 4, 2);
  UpDown ud(topo, 0);
  RouteSet routes = build_itb_routes(topo, ud);
  auto run = [&](bool with_sink) {
    Simulator sim;
    MyrinetParams params;
    Network net(sim, topo, routes, params, PathPolicy::kSingle, 5);
    std::uint64_t count = 0;
    if (with_sink) {
      net.set_packet_event_sink([&](const PacketEventRecord&) { ++count; });
    }
    for (HostId h = 0; h < 16; ++h) {
      net.inject(h, static_cast<HostId>((h + 5) % 32), 512);
    }
    sim.run_until(ms(5));
    return net.packets_delivered();
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace itb
