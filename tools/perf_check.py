#!/usr/bin/env python3
"""Non-blocking perf-smoke comparison against a committed BENCH_*.json.

Usage:
    perf_check.py BASELINE.json FRESH.json [--tolerance 0.20]

Reads the events/sec-style rates from both perf records (the sections
written by `bench_micro_kernel --json` and `bench_parallel_scaling --json`)
and emits a GitHub Actions `::warning` for every rate that regressed by
more than the tolerance.  Absolute rates vary across machines, so this is
a smoke alarm, not a gate: the script ALWAYS exits 0.
"""

import argparse
import json
import sys


def rates(record):
    """Flatten a perf record into {label: rate} for every throughput rate."""
    out = {}
    mk = record.get("micro_kernel", {})
    kern = mk.get("engine_kernel", {})
    for key in ("legacy_ops_per_sec", "pod_ops_per_sec"):
        if key in kern:
            out[f"engine_kernel.{key}"] = kern[key]
    e2e = mk.get("end_to_end", {})
    for key in ("legacy_events_per_sec", "pod_events_per_sec"):
        if key in e2e:
            out[f"end_to_end.{key}"] = e2e[key]
    overhead = mk.get("checked_overhead", {})
    for key in ("ledger_off_events_per_sec", "ledger_on_events_per_sec",
                "checked_events_per_sec"):
        if key in overhead:
            out[f"checked_overhead.{key}"] = overhead[key]
    for sample in record.get("parallel_scaling", {}).get("samples", []):
        if "jobs" in sample and "events_per_sec" in sample:
            out[f"parallel_scaling.jobs{sample['jobs']}.events_per_sec"] = (
                sample["events_per_sec"]
            )
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional slowdown (default 0.20)")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = rates(json.load(f))
        with open(args.fresh) as f:
            fresh = rates(json.load(f))
    except (OSError, ValueError) as err:
        print(f"::warning title=perf-smoke::could not compare records: {err}")
        return 0

    regressions = 0
    for label, base in sorted(baseline.items()):
        if label not in fresh:
            print(f"::warning title=perf-smoke::{label} missing from fresh "
                  "record")
            continue
        now = fresh[label]
        if base <= 0:
            continue
        ratio = now / base
        marker = ""
        if ratio < 1.0 - args.tolerance:
            regressions += 1
            marker = "  <-- REGRESSION"
            print(f"::warning title=perf-smoke::{label} regressed "
                  f"{(1.0 - ratio) * 100.0:.1f}% "
                  f"({base:.3g} -> {now:.3g} events/s)")
        print(f"  {label}: {base:.3g} -> {now:.3g} "
              f"({ratio:.2f}x){marker}")

    if regressions == 0:
        print("perf-smoke: no rate regressed beyond "
              f"{args.tolerance * 100.0:.0f}% of the committed baseline")
    else:
        print(f"perf-smoke: {regressions} rate(s) regressed beyond "
              f"{args.tolerance * 100.0:.0f}% (warning only, not a gate)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
