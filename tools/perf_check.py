#!/usr/bin/env python3
"""Non-blocking perf-smoke comparison against a committed BENCH_*.json.

Usage:
    perf_check.py BASELINE.json FRESH.json [--tolerance 0.20]

Reads the events/sec-style rates from both perf records (the sections
written by `bench_micro_kernel --json` and `bench_parallel_scaling --json`)
and emits a GitHub Actions `::warning` for every rate that regressed by
more than the tolerance.  Absolute rates vary across machines, so this is
a smoke alarm, not a gate: the script ALWAYS exits 0.
"""

import argparse
import json
import sys


def rates(record):
    """Flatten a perf record into {label: rate} for every throughput rate."""
    out = {}
    mk = record.get("micro_kernel", {})
    kern = mk.get("engine_kernel", {})
    for key in ("legacy_ops_per_sec", "pod_ops_per_sec"):
        if key in kern:
            out[f"engine_kernel.{key}"] = kern[key]
    e2e = mk.get("end_to_end", {})
    for key in ("legacy_events_per_sec", "pod_events_per_sec"):
        if key in e2e:
            out[f"end_to_end.{key}"] = e2e[key]
    overhead = mk.get("checked_overhead", {})
    for key in ("ledger_off_events_per_sec", "ledger_on_events_per_sec",
                "checked_events_per_sec"):
        if key in overhead:
            out[f"checked_overhead.{key}"] = overhead[key]
    telemetry = mk.get("telemetry", {})
    for key in ("disabled_events_per_sec", "traced_events_per_sec",
                "sampled_events_per_sec", "profiled_events_per_sec",
                "sharded_disabled_events_per_sec",
                "sharded_traced_events_per_sec",
                "sharded_profiled_events_per_sec"):
        if key in telemetry:
            out[f"telemetry.{key}"] = telemetry[key]
    shard = mk.get("shard_ab", {})
    if "serial_events_per_sec" in shard:
        out["shard_ab.serial_events_per_sec"] = shard["serial_events_per_sec"]
    for sample in shard.get("shards", []):
        if "shards" in sample and "events_per_sec" in sample:
            out[f"shard_ab.k{sample['shards']}.events_per_sec"] = (
                sample["events_per_sec"]
            )
    for sample in record.get("parallel_scaling", {}).get("samples", []):
        if "jobs" in sample and "events_per_sec" in sample:
            out[f"parallel_scaling.jobs{sample['jobs']}.events_per_sec"] = (
                sample["events_per_sec"]
            )
    return out


def parallel_efficiency(record):
    """Per-worker parallel efficiency: jobs=N per-worker rate / jobs=1 rate.

    Per-worker divides the aggregate rate by min(jobs, cores), so on an
    oversubscribed box healthy efficiency stays near 1.0 and only drops
    when workers contend (the allocator-lock convoys the workspace layer
    removes).  Newer records carry the bench-computed ``efficiency``
    directly; older ones are derived from the aggregate rates.
    """
    section = record.get("parallel_scaling", {})
    samples = [s for s in section.get("samples", []) if "jobs" in s]
    if not samples:
        return None
    top = max(samples, key=lambda s: s["jobs"])
    if "efficiency" in top:
        return top["efficiency"]
    base = next((s for s in samples if s["jobs"] == 1), None)
    if base is None or "events_per_sec" not in top:
        return None
    hw = section.get("hardware_concurrency", 1) or 1

    def per_worker(sample):
        return sample["events_per_sec"] / min(sample["jobs"], hw)

    return per_worker(top) / per_worker(base)


# Absolute floor for parallel efficiency; below this the workers are
# fighting each other rather than merely sharing a machine.
EFFICIENCY_FLOOR = 0.9

# Budget for the telemetry layer's compiled-in-but-disabled cost: the
# end-to-end POD rate (tracer/profiler hooks present, gated off by null
# pointers) may sit at most this fraction below the committed baseline.
TRACING_OVERHEAD_BUDGET = 0.02

# Budget for the compressed route store's end-to-end cost: the flat-store
# POD rate may sit at most this fraction below the baseline's (which for
# pre-flat-store baselines is the nested-table rate, making this the
# nested-vs-flat e2e A/B across records).
ROUTE_STORE_E2E_BUDGET = 0.02


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional slowdown (default 0.20)")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline_record = json.load(f)
        with open(args.fresh) as f:
            fresh_record = json.load(f)
    except (OSError, ValueError) as err:
        print(f"::warning title=perf-smoke::could not compare records: {err}")
        return 0
    baseline = rates(baseline_record)
    fresh = rates(fresh_record)

    regressions = 0
    for label, base in sorted(baseline.items()):
        if label not in fresh:
            print(f"::warning title=perf-smoke::{label} missing from fresh "
                  "record")
            continue
        now = fresh[label]
        if base <= 0:
            continue
        ratio = now / base
        marker = ""
        if ratio < 1.0 - args.tolerance:
            regressions += 1
            marker = "  <-- REGRESSION"
            print(f"::warning title=perf-smoke::{label} regressed "
                  f"{(1.0 - ratio) * 100.0:.1f}% "
                  f"({base:.3g} -> {now:.3g} events/s)")
        print(f"  {label}: {base:.3g} -> {now:.3g} "
              f"({ratio:.2f}x){marker}")

    # Tracing-disabled overhead smoke: the telemetry hooks live in the hot
    # path behind null-pointer gates, so the plain end-to-end rate is the
    # measure of their disabled cost.  Budgeted tighter than the general
    # tolerance; same warning-only caveat (absolute rates vary by machine).
    base_pod = baseline.get("end_to_end.pod_events_per_sec")
    fresh_pod = fresh.get("end_to_end.pod_events_per_sec")
    if base_pod and fresh_pod:
        overhead = 1.0 - fresh_pod / base_pod
        print(f"  tracing-disabled overhead vs baseline: "
              f"{overhead * 100.0:+.1f}% "
              f"(budget {TRACING_OVERHEAD_BUDGET * 100.0:.0f}%)")
        if overhead > TRACING_OVERHEAD_BUDGET:
            regressions += 1
            print(f"::warning title=perf-smoke::tracing-disabled end-to-end "
                  f"rate {overhead * 100.0:.1f}% below baseline (budget "
                  f"{TRACING_OVERHEAD_BUDGET * 100.0:.0f}%)")
    # Enabled-telemetry costs within the fresh record (informational).
    tele_off = fresh.get("telemetry.disabled_events_per_sec")
    for label in ("traced", "sampled", "profiled"):
        rate = fresh.get(f"telemetry.{label}_events_per_sec")
        if tele_off and rate:
            print(f"  telemetry {label}: {rate:.3g} events/s "
                  f"({(1.0 - rate / tele_off) * 100.0:+.1f}% vs disabled)")

    # Sharded telemetry smoke: the per-lane tracer/profiler hooks sit in
    # the same hot path under pod_parallel, so the sharded
    # tracing-disabled rate carries the same ≤2% budget against the
    # baseline's sharded rate.  A pre-sharded-telemetry baseline records
    # that rate in shard_ab (same K, same point); newer baselines carry
    # telemetry.sharded_disabled_events_per_sec directly.
    fresh_tele = fresh_record.get("micro_kernel", {}).get("telemetry", {})
    sh_k = fresh_tele.get("sharded_shards")
    sh_off = fresh.get("telemetry.sharded_disabled_events_per_sec")
    base_sh = baseline.get("telemetry.sharded_disabled_events_per_sec")
    if base_sh is None and sh_k is not None:
        base_sh = baseline.get(f"shard_ab.k{int(sh_k)}.events_per_sec")
    if base_sh and sh_off:
        overhead = 1.0 - sh_off / base_sh
        print(f"  sharded tracing-disabled overhead vs baseline: "
              f"{overhead * 100.0:+.1f}% "
              f"(budget {TRACING_OVERHEAD_BUDGET * 100.0:.0f}%)")
        if overhead > TRACING_OVERHEAD_BUDGET:
            regressions += 1
            print(f"::warning title=perf-smoke::sharded tracing-disabled "
                  f"rate {overhead * 100.0:.1f}% below baseline (budget "
                  f"{TRACING_OVERHEAD_BUDGET * 100.0:.0f}%)")
    for label in ("traced", "profiled"):
        rate = fresh.get(f"telemetry.sharded_{label}_events_per_sec")
        if sh_off and rate:
            print(f"  sharded telemetry {label} (K={sh_k}): "
                  f"{rate:.3g} events/s "
                  f"({(1.0 - rate / sh_off) * 100.0:+.1f}% vs disabled)")
    if fresh_tele.get("sharded_barrier_wait_ms") is not None:
        print(f"  sharded traced barrier wait: "
              f"{fresh_tele['sharded_barrier_wait_ms']:.1f} ms, "
              f"lane imbalance "
              f"{fresh_tele.get('sharded_lane_imbalance', 0.0):.2f}")

    # Route-store smoke: the flat store's end-to-end rate against the
    # baseline pod rate (a nested-era baseline makes this the nested-vs-flat
    # comparison), plus the fresh record's build/memory numbers.
    route = fresh_record.get("micro_kernel", {}).get("route_store", {})
    flat_e2e = route.get("flat_e2e_events_per_sec")
    if base_pod and flat_e2e:
        overhead = 1.0 - flat_e2e / base_pod
        print(f"  route-store e2e vs baseline: {overhead * 100.0:+.1f}% "
              f"(budget {ROUTE_STORE_E2E_BUDGET * 100.0:.0f}%)")
        if overhead > ROUTE_STORE_E2E_BUDGET:
            regressions += 1
            print(f"::warning title=perf-smoke::flat route-store end-to-end "
                  f"rate {overhead * 100.0:.1f}% below baseline (budget "
                  f"{ROUTE_STORE_E2E_BUDGET * 100.0:.0f}%)")
    if route:
        shrink = route.get("table_shrink")
        speedup = route.get("parallel_build_speedup")
        if shrink is not None:
            print(f"  route-store table shrink vs nested: {shrink:.2f}x")
        if speedup is not None:
            print(f"  route-store parallel build speedup "
                  f"(jobs={route.get('parallel_jobs', '?')}): {speedup:.2f}x")
        if route.get("parallel_bit_identical") is False:
            regressions += 1
            print("::warning title=perf-smoke::parallel route build is NOT "
                  "bit-identical to the serial build")

    # Sharded-engine smoke (informational, never a rate gate): the
    # conservative window engine's speedup over serial for one simulation.
    # Hosted CI runners are often effectively single-core, where sharding
    # legitimately runs BELOW 1.0x (barrier overhead, no parallel gain), so
    # only the determinism bit warns — speedups are for multicore boxes
    # reading the committed record.
    shard = fresh_record.get("micro_kernel", {}).get("shard_ab", {})
    shard_serial = shard.get("serial_events_per_sec")
    for sample in shard.get("shards", []):
        rate = sample.get("events_per_sec")
        if shard_serial and rate:
            print(f"  shard speedup K={sample.get('shards', '?')}: "
                  f"{rate / shard_serial:.2f}x "
                  f"(ties {sample.get('boundary_ties', '?')})")
    if shard.get("bit_identical") is False:
        regressions += 1
        print("::warning title=perf-smoke::sharded engine is NOT "
              "bit-identical to the serial engine")
    scaling = fresh_record.get("parallel_scaling", {})
    if scaling.get("shard_deterministic") is False:
        regressions += 1
        print("::warning title=perf-smoke::intra-run sharding is NOT "
              "bit-identical to the serial engine")

    # Low-diameter smoke (PR 8): the 1k-switch checked scale cells must be
    # bit-identical between serial and sharded runs and invariant-free;
    # table footprint/build times are informational (machine-dependent).
    lowdiam = fresh_record.get("lowdiameter", {})
    for table in lowdiam.get("tables", []):
        print(f"  lowdiameter table {table.get('testbed', '?')}/"
              f"{table.get('scheme', '?')}: "
              f"{table.get('table_bytes', 0) / 1024.0:.1f} KiB, "
              f"build {table.get('build_ms', 0):.1f} ms")
    scale = fresh_record.get("lowdiameter_scale", {})
    if scale.get("deterministic") is False:
        regressions += 1
        print("::warning title=perf-smoke::low-diameter sharded scale run is "
              "NOT bit-identical to the serial engine")
    for cell in scale.get("cells", []):
        violations = cell.get("serial", {}).get("invariant_violations", 0)
        for sample in cell.get("sharded", []):
            violations += sample.get("invariant_violations", 0)
        if violations:
            regressions += 1
            print(f"::warning title=perf-smoke::low-diameter scale cell "
                  f"{cell.get('testbed', '?')} reported {violations} "
                  "invariant violation(s) under checked runs")

    # Route-scale smoke (PR 9): the switch-pair factorized store across the
    # topology ladder.  Table footprints are deterministic (byte counts, not
    # rates), so growth beyond the tolerance warns; build times are
    # informational.  Against a pre-factorization baseline (no route_scale
    # section) the instance-flat cells of lowdiameter_scale double as the
    # reference, and the factorization must show at least the 10x build and
    # footprint improvement it was introduced for.
    def scale_key(cell):
        return (cell.get("testbed"), cell.get("scheme"))

    fresh_scale = fresh_record.get("route_scale", {}).get("cells", [])
    base_scale = {scale_key(c): c
                  for c in baseline_record.get("route_scale", {})
                  .get("cells", [])}
    base_flat = {scale_key(c): c
                 for c in baseline_record.get("lowdiameter_scale", {})
                 .get("cells", [])}
    for cell in fresh_scale:
        label = f"{cell.get('testbed', '?')}/{cell.get('scheme', '?')}"
        bytes_now = cell.get("table_bytes", 0)
        print(f"  route-scale {label}: {bytes_now / 1024.0:.1f} KiB "
              f"(core {cell.get('core_bytes', 0) / 1024.0:.1f} KiB), "
              f"build {cell.get('build_ms', 0):.1f} ms, "
              f"compose {cell.get('compose_ns_avg', 0):.0f} ns")
        explicit = cell.get("explicit_table_bytes", 0)
        if explicit and bytes_now >= explicit:
            regressions += 1
            print(f"::warning title=perf-smoke::route-scale {label}: "
                  f"factorized table ({bytes_now} B) not smaller than the "
                  f"instance-flat tier ({explicit} B)")
        prior = base_scale.get(scale_key(cell))
        if prior and prior.get("table_bytes"):
            growth = bytes_now / prior["table_bytes"] - 1.0
            if growth > args.tolerance:
                regressions += 1
                print(f"::warning title=perf-smoke::route-scale {label} "
                      f"table grew {growth * 100.0:.1f}% "
                      f"({prior['table_bytes']} -> {bytes_now} B)")
        elif scale_key(cell) in base_flat:
            flat = base_flat[scale_key(cell)]
            shrink = flat.get("table_bytes", 0) / max(bytes_now, 1)
            speedup = flat.get("build_ms", 0.0) / max(
                cell.get("build_ms", 0.0), 1e-9)
            print(f"  route-scale {label} vs instance-flat baseline: "
                  f"{shrink:.1f}x smaller, {speedup:.1f}x faster build")
            if shrink < 10.0:
                regressions += 1
                print(f"::warning title=perf-smoke::route-scale {label} "
                      f"factorized table only {shrink:.1f}x smaller than "
                      "the instance-flat baseline (floor 10x)")
            if speedup < 10.0:
                regressions += 1
                print(f"::warning title=perf-smoke::route-scale {label} "
                      f"factorized build only {speedup:.1f}x faster than "
                      "the instance-flat baseline (floor 10x)")

    # Parallel-efficiency smoke: the workspace layer's headline number.
    base_eff = parallel_efficiency(baseline_record)
    fresh_eff = parallel_efficiency(fresh_record)
    if fresh_eff is not None:
        base_txt = f"{base_eff:.3f}" if base_eff is not None else "n/a"
        print(f"  parallel efficiency (per-worker, jobs=max / jobs=1): "
              f"{base_txt} -> {fresh_eff:.3f} (floor {EFFICIENCY_FLOOR})")
        if fresh_eff < EFFICIENCY_FLOOR:
            regressions += 1
            print(f"::warning title=perf-smoke::parallel efficiency "
                  f"{fresh_eff:.3f} below the {EFFICIENCY_FLOOR} floor")
        elif base_eff is not None and \
                fresh_eff < base_eff * (1.0 - args.tolerance):
            regressions += 1
            print(f"::warning title=perf-smoke::parallel efficiency dropped "
                  f"{(1.0 - fresh_eff / base_eff) * 100.0:.1f}% vs baseline "
                  f"({base_eff:.3f} -> {fresh_eff:.3f})")

    if regressions == 0:
        print("perf-smoke: no rate regressed beyond "
              f"{args.tolerance * 100.0:.0f}% of the committed baseline")
    else:
        print(f"perf-smoke: {regressions} rate(s) regressed beyond "
              f"{args.tolerance * 100.0:.0f}% (warning only, not a gate)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
