# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(itbsim_point "/root/repo/tools/itbsim" "--topology" "torus" "--scheme" "ITB-RR" "--load" "0.008" "--warmup-us" "30" "--measure-us" "60")
set_tests_properties(itbsim_point PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(itbsim_json "/root/repo/tools/itbsim" "--topology" "torus" "--scheme" "UP/DOWN" "--load" "0.008" "--warmup-us" "30" "--measure-us" "60" "--json")
set_tests_properties(itbsim_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(itbsim_replications "/root/repo/tools/itbsim" "--topology" "torus" "--scheme" "ITB-SP" "--load" "0.008" "--warmup-us" "30" "--measure-us" "60" "--replications" "3")
set_tests_properties(itbsim_replications PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(itbsim_sweep_hotspot "/root/repo/tools/itbsim" "--topology" "cplant" "--scheme" "ITB-RR" "--pattern" "hotspot:37:0.05" "--sweep" "0.005:0.02:3" "--warmup-us" "30" "--measure-us" "60")
set_tests_properties(itbsim_sweep_hotspot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(itbsim_irregular_local "/root/repo/tools/itbsim" "--topology" "irregular:10:2:4:7" "--scheme" "ITB-RR" "--pattern" "local:3" "--load" "0.01" "--warmup-us" "30" "--measure-us" "60")
set_tests_properties(itbsim_irregular_local PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(itbsim_list_topology "/root/repo/tools/itbsim" "--topology" "express" "--list-topology")
set_tests_properties(itbsim_list_topology PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(itbsim_rejects_bad_args "/root/repo/tools/itbsim" "--topology" "mars")
set_tests_properties(itbsim_rejects_bad_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;24;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(itbsim_telemetry "/root/repo/tools/itbsim" "--topology" "torus" "--scheme" "ITB-RR" "--load" "0.008" "--warmup-us" "30" "--measure-us" "60" "--trace" "itbsim_telemetry_trace.json" "--trace-raw" "itbsim_telemetry_trace.csv" "--samples" "itbsim_telemetry_samples.csv" "--sample-us" "10" "--profile")
set_tests_properties(itbsim_telemetry PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;30;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(itbsim_telemetry_json_mode "/root/repo/tools/itbsim" "--topology" "torus" "--scheme" "ITB-RR" "--load" "0.008" "--warmup-us" "30" "--measure-us" "60" "--json" "--trace-capacity" "256" "--trace" "itbsim_telemetry_small.json")
set_tests_properties(itbsim_telemetry_json_mode PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;36;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(trace2perfetto_roundtrip "/root/.pyenv/shims/python3" "/root/repo/tools/trace2perfetto.py" "itbsim_telemetry_trace.csv" "itbsim_telemetry_converted.json")
set_tests_properties(trace2perfetto_roundtrip PROPERTIES  DEPENDS "itbsim_telemetry" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;45;add_test;/root/repo/tools/CMakeLists.txt;0;")
