file(REMOVE_RECURSE
  "CMakeFiles/itbsim.dir/itbsim.cpp.o"
  "CMakeFiles/itbsim.dir/itbsim.cpp.o.d"
  "itbsim"
  "itbsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itbsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
