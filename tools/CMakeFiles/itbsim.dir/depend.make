# Empty dependencies file for itbsim.
# This may be replaced when dependencies are built.
