#!/usr/bin/env python3
"""Convert a raw itbsim trace CSV (--trace-raw) to Chrome trace-event JSON.

Fallback path for workflows that saved the raw per-record dump instead of
asking itbsim for --trace directly; the output loads in Perfetto
(https://ui.perfetto.dev) or chrome://tracing and mirrors the C++ exporter
in src/obs/perfetto.cpp:

  pid 1 "channels": one thread per directed channel; every acquire/release
                    pair becomes a complete ("X") slice.
  pid 2 "packets":  async ("b"/"n"/"e") lifecycle events keyed by packet id.

Sharded traces (a trailing `lane` column, written by multi-lane runs) place
each lifecycle event on the tid of the lane that executed it and name those
tids "lane <N>"; a lane-less CSV produces exactly the output this script
always produced.

Usage:
  itbsim --trace-raw trace.csv ...
  python3 tools/trace2perfetto.py trace.csv trace.json

Stdlib only; the raw CSV has no channel labels, so channel threads are
named "ch<N>" instead of the wiring labels the C++ exporter emits.
"""
import csv
import json
import sys


def ps_to_us(ps: int) -> float:
    return ps / 1e6


def convert(rows):
    events = [
        {"name": "process_name", "ph": "M", "pid": 1, "args": {"name": "channels"}},
        {"name": "process_name", "ph": "M", "pid": 2, "args": {"name": "packets"}},
    ]
    channels = sorted({int(r["channel"]) for r in rows if int(r["channel"]) >= 0})
    for ch in channels:
        events.append({"name": "thread_name", "ph": "M", "pid": 1, "tid": ch,
                       "args": {"name": f"ch{ch}"}})
    lanes = sorted({int(r.get("lane", 0) or 0) for r in rows})
    if lanes and lanes[-1] > 0:
        for lane in range(lanes[-1] + 1):
            events.append({"name": "thread_name", "ph": "M", "pid": 2,
                           "tid": lane, "args": {"name": f"lane {lane}"}})

    open_slices = {}  # channel -> acquire row
    t_last = int(rows[-1]["t_ps"]) if rows else 0

    def close(acq, t_end_ps):
        events.append({
            "name": f"pkt {acq['packet']}", "cat": "channel", "ph": "X",
            "pid": 1, "tid": int(acq["channel"]),
            "ts": ps_to_us(int(acq["t_ps"])),
            "dur": ps_to_us(t_end_ps - int(acq["t_ps"])),
            "args": {"packet": int(acq["packet"])},
        })

    for r in rows:
        kind = r["kind"]
        if kind == "chan_acquire":
            open_slices[int(r["channel"])] = r
            continue
        if kind == "chan_release":
            acq = open_slices.pop(int(r["channel"]), None)
            if acq is not None:  # acquire may have been dropped by ring wrap
                close(acq, int(r["t_ps"]))
            continue
        ph = {"inject": "b", "deliver": "e"}.get(kind, "n")
        ev = {"name": kind, "cat": "packet", "ph": ph, "id": int(r["packet"]),
              "pid": 2, "tid": int(r.get("lane", 0) or 0),
              "ts": ps_to_us(int(r["t_ps"]))}
        if kind != "deliver":
            ev["args"] = {"sw": int(r["switch"]), "host": int(r["host"])}
        events.append(ev)

    for ch in sorted(open_slices):
        close(open_slices[ch], t_last)

    return {"displayTimeUnit": "ns", "traceEvents": events}


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1], newline="") as f:
        rows = list(csv.DictReader(f))
    with open(argv[2], "w") as f:
        json.dump(convert(rows), f)
    print(f"{len(rows)} records -> {argv[2]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
