// itbsim — command-line driver for the simulator.
//
// Runs a single point or a load sweep on any built-in or file-described
// topology, any routing scheme and traffic pattern, and emits a table
// and/or CSV.  Examples:
//
//   itbsim --topology torus --scheme ITB-RR --load 0.02
//   itbsim --topology cplant --scheme UP/DOWN --pattern hotspot:37:0.05
//          --sweep 0.01:0.12:10 --csv out.csv     (one command line)
//   itbsim --topology file:mynet.topo --scheme ITB-SP --pattern local:3
//   itbsim --topology irregular:16:4:2:99 --list-topology
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/route_io.hpp"
#include "harness/json.hpp"
#include "obs/perfetto.hpp"
#include "obs/samplers.hpp"
#include "sim/workspace.hpp"
#include "sim/pool.hpp"
#include "harness/replicate.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "harness/testbed.hpp"
#include "sim/rng.hpp"
#include "topo/generators.hpp"
#include "topo/io.hpp"
#include "traffic/patterns.hpp"

namespace {

using namespace itb;

[[noreturn]] void usage(const char* argv0, const std::string& error = "") {
  if (!error.empty()) std::fprintf(stderr, "error: %s\n\n", error.c_str());
  std::fprintf(stderr,
               "usage: %s [options]\n"
               "  --topology T     torus | express | cplant |\n"
               "                   hyperx:<S1>x..x<SL>:<hosts> |\n"
               "                   dragonfly:<a>:<p>:<h>[:palmtree|absolute] |\n"
               "                   fullmesh:<switches>:<hosts> |\n"
               "                   irregular:<switches>:<hosts>:<ports>:<seed> |\n"
               "                   file:<path>   (default torus)\n"
               "  --scheme S       UP/DOWN | ITB-SP | ITB-RR | ITB-RND | "
               "ITB-ADAPT |\n"
               "                   MIN (structured minimal baseline; hyperx/\n"
               "                   dragonfly/fullmesh only)  (default ITB-RR)\n"
               "  --root R         up*/down* root switch id, or 'auto' for the\n"
               "                   double-sweep pseudo-center (default 0)\n"
               "  --pattern P      uniform | bitrev | hotspot:<host>:<frac> | "
               "local:<radius> (default uniform)\n"
               "  --load X         offered load, flits/ns/switch (default "
               "0.01)\n"
               "  --sweep LO:HI:N  geometric load sweep instead of one point\n"
               "  --find-saturation  ladder search for the saturation point\n"
               "  --payload N      message payload bytes (default 512)\n"
               "  --warmup-us N    warm-up time (default 150)\n"
               "  --measure-us N   measurement window (default 400)\n"
               "  --seed N         RNG seed (default 42)\n"
               "  --chunk N        engine chunk size in flits, 1..8 (default "
               "8)\n"
               "  --engine E       legacy | pod | pod_parallel (default pod;\n"
               "                   pod_parallel shards ONE simulation across\n"
               "                   --shards worker threads, same results)\n"
               "  --shards N       worker lanes for --engine pod_parallel\n"
               "                   (default: hardware concurrency, clamped to\n"
               "                   the topology's switch count)\n"
               "  --poisson        Poisson instead of constant-rate arrivals\n"
               "  --csv PATH       append results as CSV\n"
               "  --json           print results as JSON instead of a table\n"
               "  --replications N single-point mode: N seed replications "
               "with a 95%% CI\n"
               "  --jobs N         worker threads for sweeps/replications\n"
               "                   (also ITB_BENCH_JOBS; default: hardware\n"
               "                   concurrency; results are identical for\n"
               "                   every N)\n"
               "  --list-topology  print the topology description and exit\n"
               "  --dump-routes N  print routes whose first alternative uses\n"
               "                   >= N in-transit hosts, then exit\n"
               " telemetry (single-point mode):\n"
               "  --trace PATH     record a packet-lifecycle trace and write\n"
               "                   Chrome/Perfetto trace-event JSON (load it\n"
               "                   at ui.perfetto.dev or chrome://tracing)\n"
               "  --trace-raw PATH write the raw trace as CSV (convert later\n"
               "                   with tools/trace2perfetto.py)\n"
               "  --trace-capacity N  trace ring size in records (default\n"
               "                   65536; oldest records drop on overflow)\n"
               "  --samples PATH   append windowed time-series samples as CSV\n"
               "  --sample-us N    sample window width (default measure/20)\n"
               "  --heatmap PATH   write a congestion heatmap CSV: one row\n"
               "                   per (metric, id, window) — link_util by\n"
               "                   channel, itb_pool by host; implies\n"
               "                   windowed sampling (works sharded)\n"
               "  --profile        time engine phases, report per-phase wall\n"
               "                   clock (included in --json output)\n",
               argv0);
  std::exit(2);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t at = s.find(sep, start);
    if (at == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, at - start));
    start = at + 1;
  }
}

Topology make_topology(const std::string& spec, const char* argv0) {
  if (spec == "torus") return make_torus_2d(8, 8, 8);
  if (spec == "express") return make_torus_2d_express(8, 8, 8);
  if (spec == "cplant") return make_cplant();
  if (spec.rfind("file:", 0) == 0) return load_topology(spec.substr(5));
  if (spec.rfind("hyperx:", 0) == 0) {
    const auto parts = split(spec.substr(7), ':');
    if (parts.size() != 2) usage(argv0, "hyperx wants hyperx:<S1>x..x<SL>:<hosts>");
    std::vector<int> dims;
    for (const std::string& d : split(parts[0], 'x')) dims.push_back(std::stoi(d));
    return make_hyperx(dims, std::stoi(parts[1]));
  }
  if (spec.rfind("dragonfly:", 0) == 0) {
    const auto parts = split(spec.substr(10), ':');
    if (parts.size() != 3 && parts.size() != 4) {
      usage(argv0, "dragonfly wants dragonfly:<a>:<p>:<h>[:palmtree|absolute]");
    }
    DragonflyArrangement arr = DragonflyArrangement::kPalmtree;
    if (parts.size() == 4) {
      if (parts[3] == "absolute") arr = DragonflyArrangement::kAbsolute;
      else if (parts[3] != "palmtree") usage(argv0, "unknown dragonfly arrangement '" + parts[3] + "'");
    }
    return make_dragonfly(std::stoi(parts[0]), std::stoi(parts[1]),
                          std::stoi(parts[2]), arr);
  }
  if (spec.rfind("fullmesh:", 0) == 0) {
    const auto parts = split(spec.substr(9), ':');
    if (parts.size() != 2) usage(argv0, "fullmesh wants fullmesh:<switches>:<hosts>");
    return make_full_mesh(std::stoi(parts[0]), std::stoi(parts[1]));
  }
  if (spec.rfind("irregular:", 0) == 0) {
    const auto parts = split(spec.substr(10), ':');
    if (parts.size() != 4) {
      usage(argv0, "irregular wants irregular:<sw>:<hosts>:<ports>:<seed>");
    }
    Rng rng(std::stoull(parts[3]));
    return make_irregular(std::stoi(parts[0]), std::stoi(parts[1]),
                          std::stoi(parts[2]), rng);
  }
  usage(argv0, "unknown topology '" + spec + "'");
}

std::unique_ptr<DestinationPattern> make_pattern(const std::string& spec,
                                                 const Topology& topo,
                                                 const char* argv0) {
  if (spec == "uniform") {
    return std::make_unique<UniformPattern>(topo.num_hosts());
  }
  if (spec == "bitrev") {
    return std::make_unique<BitReversalPattern>(topo.num_hosts());
  }
  if (spec.rfind("hotspot:", 0) == 0) {
    const auto parts = split(spec.substr(8), ':');
    if (parts.size() != 2) usage(argv0, "hotspot wants hotspot:<host>:<frac>");
    return std::make_unique<HotspotPattern>(
        topo.num_hosts(), std::stoi(parts[0]), std::stod(parts[1]));
  }
  if (spec.rfind("local:", 0) == 0) {
    return std::make_unique<LocalPattern>(topo, std::stoi(spec.substr(6)));
  }
  usage(argv0, "unknown pattern '" + spec + "'");
}

std::optional<EngineKind> parse_engine(const std::string& name) {
  for (const EngineKind e :
       {EngineKind::kLegacy, EngineKind::kPod, EngineKind::kPodParallel}) {
    if (name == to_string(e)) return e;
  }
  return std::nullopt;
}

std::optional<RoutingScheme> parse_scheme(const std::string& name) {
  for (const RoutingScheme s :
       {RoutingScheme::kUpDown, RoutingScheme::kItbSp, RoutingScheme::kItbRr,
        RoutingScheme::kItbRnd, RoutingScheme::kItbAdapt,
        RoutingScheme::kMinimal}) {
    if (name == to_string(s)) return s;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  std::string topo_spec = "torus";
  std::string root_spec = "0";
  std::string scheme_name = "ITB-RR";
  std::string pattern_spec = "uniform";
  std::string csv;
  double load = 0.01;
  std::optional<std::string> sweep_spec;
  bool find_sat = false;
  bool list_topology = false;
  bool as_json = false;
  int replications = 1;
  int jobs = default_jobs();
  std::optional<int> dump_routes_min;
  std::string trace_path;
  std::string trace_raw_path;
  std::string samples_path;
  std::string heatmap_path;
  long long sample_us = 0;
  bool profile = false;
  RunConfig cfg;

  auto need_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage(argv[0], std::string(argv[i]) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--topology") topo_spec = need_value(i);
      else if (arg == "--root") root_spec = need_value(i);
      else if (arg == "--scheme") scheme_name = need_value(i);
      else if (arg == "--pattern") pattern_spec = need_value(i);
      else if (arg == "--load") load = std::stod(need_value(i));
      else if (arg == "--sweep") sweep_spec = need_value(i);
      else if (arg == "--find-saturation") find_sat = true;
      else if (arg == "--payload") cfg.payload_bytes = std::stoi(need_value(i));
      else if (arg == "--warmup-us") cfg.warmup = us(std::stoll(need_value(i)));
      else if (arg == "--measure-us") cfg.measure = us(std::stoll(need_value(i)));
      else if (arg == "--seed") cfg.seed = std::stoull(need_value(i));
      else if (arg == "--chunk") cfg.params.chunk_flits = std::stoi(need_value(i));
      else if (arg == "--engine") {
        const std::string name = need_value(i);
        const auto engine = parse_engine(name);
        if (!engine) usage(argv[0], "unknown engine '" + name + "'");
        cfg.engine = *engine;
        if (cfg.engine == EngineKind::kPodParallel && cfg.shards <= 1) {
          cfg.shards = default_jobs();  // clamped to switches by the plan
        }
      }
      else if (arg == "--shards") cfg.shards = std::stoi(need_value(i));
      else if (arg == "--poisson") cfg.poisson = true;
      else if (arg == "--csv") csv = need_value(i);
      else if (arg == "--json") as_json = true;
      else if (arg == "--replications") replications = std::stoi(need_value(i));
      else if (arg == "--jobs") jobs = std::stoi(need_value(i));
      else if (arg == "--list-topology") list_topology = true;
      else if (arg == "--dump-routes") dump_routes_min = std::stoi(need_value(i));
      else if (arg == "--trace") trace_path = need_value(i);
      else if (arg == "--trace-raw") trace_raw_path = need_value(i);
      else if (arg == "--trace-capacity")
        cfg.trace_capacity = static_cast<std::size_t>(std::stoull(need_value(i)));
      else if (arg == "--samples") samples_path = need_value(i);
      else if (arg == "--heatmap") heatmap_path = need_value(i);
      else if (arg == "--sample-us") sample_us = std::stoll(need_value(i));
      else if (arg == "--profile") profile = true;
      else if (arg == "--help" || arg == "-h") usage(argv[0]);
      else usage(argv[0], "unknown option '" + arg + "'");
    } catch (const std::invalid_argument&) {
      usage(argv[0], "bad value for " + arg);
    }
  }
  if (jobs < 1) usage(argv[0], "--jobs must be >= 1");
  if (cfg.shards < 1) usage(argv[0], "--shards must be >= 1");

  try {
    Topology topo = make_topology(topo_spec, argv[0]);
    if (list_topology) {
      std::fputs(serialize_topology(topo).c_str(), stdout);
      return 0;
    }
    const auto scheme = parse_scheme(scheme_name);
    if (!scheme) usage(argv[0], "unknown scheme '" + scheme_name + "'");
    const SwitchId root =
        root_spec == "auto" ? kAutoRoot : std::stoi(root_spec);
    if (root != kAutoRoot && (root < 0 || root >= topo.num_switches())) {
      usage(argv[0], "--root out of range for this topology");
    }
    Testbed tb(std::move(topo), root);
    if (dump_routes_min) {
      const RouteSet& rs = tb.routes(*scheme);
      std::printf("# %s\n", summarize_route_set(tb.topo(), rs).c_str());
      std::ostringstream os;
      dump_routes(os, tb.topo(), rs, *dump_routes_min);
      std::fputs(os.str().c_str(), stdout);
      return 0;
    }
    const auto pattern = make_pattern(pattern_spec, tb.topo(), argv[0]);

    if (!as_json) {
      std::printf("# %s | %s | %s | payload %dB | seed %llu\n",
                  tb.topo().name().c_str(), scheme_name.c_str(),
                  pattern_spec.c_str(), cfg.payload_bytes,
                  static_cast<unsigned long long>(cfg.seed));
    }

    if (find_sat) {
      const auto sat =
          find_saturation(tb, *scheme, *pattern, cfg, load, 1.25, 20);
      if (as_json) {
        std::printf("%s\n",
                    series_to_json(tb.topo().name() + "/" + pattern_spec,
                                   scheme_name, sat.trace)
                        .c_str());
      } else {
        print_series(std::cout, tb.topo().name(), scheme_name, sat.trace);
        std::printf("saturation throughput: %.4f flits/ns/switch\n",
                    sat.throughput);
      }
      append_series_csv(csv, tb.topo().name() + "/" + pattern_spec,
                        scheme_name, sat.trace);
    } else if (sweep_spec) {
      const auto parts = split(*sweep_spec, ':');
      if (parts.size() != 3) usage(argv[0], "--sweep wants LO:HI:N");
      const auto loads = geometric_loads(std::stod(parts[0]),
                                         std::stod(parts[1]),
                                         std::stoi(parts[2]));
      const auto series = sweep_loads(tb, *scheme, *pattern, cfg, loads, jobs);
      if (as_json) {
        std::printf("%s\n",
                    series_to_json(tb.topo().name() + "/" + pattern_spec,
                                   scheme_name, series)
                        .c_str());
      } else {
        print_series(std::cout, tb.topo().name(), scheme_name, series);
      }
      append_series_csv(csv, tb.topo().name() + "/" + pattern_spec,
                        scheme_name, series);
    } else if (replications > 1) {
      cfg.load_flits_per_ns_per_switch = load;
      const ReplicatedResult rep =
          run_replicated(tb, *scheme, *pattern, cfg, replications, jobs);
      if (as_json) {
        JsonWriter w;
        w.begin_object();
        w.key("replications").value(replications);
        w.key("accepted_mean").value(rep.accepted.mean());
        w.key("accepted_ci95").value(rep.accepted_ci95());
        w.key("latency_mean_ns").value(rep.latency_ns.mean());
        w.key("latency_ci95_ns").value(rep.latency_ci95_ns());
        w.key("saturated_count").value(std::int64_t{rep.saturated_count});
        w.end_object();
        std::printf("%s\n", w.str().c_str());
      } else {
        std::printf("accepted: %.4f +- %.4f flits/ns/switch   latency: "
                    "%.1f +- %.1f ns   (%d replications, %d saturated)\n",
                    rep.accepted.mean(), rep.accepted_ci95(),
                    rep.latency_ns.mean(), rep.latency_ci95_ns(),
                    replications, rep.saturated_count);
      }
    } else {
      cfg.load_flits_per_ns_per_switch = load;
      cfg.trace = !trace_path.empty() || !trace_raw_path.empty();
      cfg.profile = profile;
      if (!samples_path.empty() || !heatmap_path.empty() || sample_us > 0) {
        cfg.sample_period =
            sample_us > 0 ? us(sample_us) : cfg.measure / 20;
        if (cfg.sample_period <= 0) cfg.sample_period = cfg.measure;
        cfg.sample_link_util = true;
        cfg.sample_itb_pool = !heatmap_path.empty();
      }
      const RunResult r = run_point(tb, *scheme, *pattern, cfg);
      if (cfg.engine == EngineKind::kPodParallel && r.shards == 0) {
        std::fprintf(stderr,
                     "itbsim: note: pod_parallel downgraded to serial for "
                     "this point (adaptive routing needs the serial "
                     "feedback loop)\n");
      }
      std::vector<SweepPoint> one{{load, r}};
      if (as_json) {
        std::printf("%s\n", run_result_to_json(r).c_str());
      } else {
        print_series(std::cout, tb.topo().name(), scheme_name, one);
      }
      append_series_csv(csv, tb.topo().name() + "/" + pattern_spec,
                        scheme_name, one);
      // run_point left the calling thread's workspace prepared for this
      // point, so its network still carries the channel labels the
      // exporter needs.
      SimWorkspace& ws = this_thread_workspace();
      const Network& net = ws.net();
      if (!trace_path.empty()) {
        std::ofstream os(trace_path);
        // Sharded points also export the engine-health track group (one
        // pid per lane: window slices, barrier waits, mailbox counters).
        os << trace_to_chrome_json(r.trace, net, r.trace_dropped,
                                   ws.parallel() ? &ws.engine() : nullptr);
        if (!os) throw std::runtime_error("cannot write " + trace_path);
        std::fprintf(stderr,
                     "trace: %llu records (%llu dropped) -> %s\n",
                     static_cast<unsigned long long>(r.trace_records),
                     static_cast<unsigned long long>(r.trace_dropped),
                     trace_path.c_str());
      }
      if (!trace_raw_path.empty()) {
        std::ofstream os(trace_raw_path);
        os << trace_to_csv(r.trace);
        if (!os) throw std::runtime_error("cannot write " + trace_raw_path);
      }
      if (!samples_path.empty()) {
        append_samples_csv(samples_path,
                           tb.topo().name() + "/" + pattern_spec, scheme_name,
                           r.samples);
      }
      if (!heatmap_path.empty()) {
        write_heatmap_csv(heatmap_path, r.samples);
        std::fprintf(stderr, "heatmap: %zu windows -> %s\n",
                     r.samples.size(), heatmap_path.c_str());
      }
      if (profile && !as_json) {
        std::printf("# phase profile (wall clock, inclusive)\n");
        for (std::size_t i = 0; i < r.profile.size(); ++i) {
          const PhaseAgg& a = r.profile[i];
          if (a.calls == 0) continue;
          std::printf("  %-16s %10.3f ms  %12llu calls\n",
                      to_string(static_cast<Phase>(i)),
                      static_cast<double>(a.wall_ns) / 1e6,
                      static_cast<unsigned long long>(a.calls));
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "itbsim: %s\n", e.what());
    return 1;
  }
  return 0;
}
